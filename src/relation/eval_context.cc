#include "relation/eval_context.h"

#include <sstream>

#include "relation/evaluate.h"

namespace cqbounds {

namespace {

/// Canonical spelling of a query's shape: everything
/// ProbeLowWidthStructure reads (variable count, atom relation names,
/// per-atom variable ids). Two queries with equal signatures have
/// identical variable-intersection graphs, so they share one plan entry --
/// e.g. the same parsed query object evaluated many times, or two parses
/// of the same text (ParseQuery interns variables in order of appearance).
/// Relation names are length-prefixed: Query places no character
/// restrictions on them, so a name containing the signature's own
/// separators must not let two distinct shapes collide on one key.
std::string PlanSignature(const Query& query) {
  std::ostringstream os;
  os << query.num_variables() << '|';
  for (const Atom& atom : query.atoms()) {
    os << atom.relation.size() << ':' << atom.relation << '(';
    for (std::size_t i = 0; i < atom.vars.size(); ++i) {
      if (i != 0) os << ',';
      os << atom.vars[i];
    }
    os << ");";
  }
  return os.str();
}

}  // namespace

const TrieIndex& EvalContext::GetTrie(
    const Relation& rel, const std::vector<std::vector<int>>& level_positions,
    EvalStats* stats) {
  // Identity, not name equality: a same-named relation from another
  // database can coincide in generation, and serving it a "hit" would
  // silently return a trie over different tuples.
  CQB_CHECK(OwnsRelation(rel) &&
            "relation does not belong to the context's database");
  Key key{rel.name(), level_positions};
  auto it = cache_.find(key);
  if (it != cache_.end() && it->second.generation == rel.generation()) {
    ++hits_;
    if (stats != nullptr) ++stats->trie_cache_hits;
    return it->second.trie;
  }
  ++misses_;
  if (stats != nullptr) ++stats->trie_cache_misses;
  Entry entry{rel.generation(), TrieIndex(rel, level_positions)};
  if (it != cache_.end()) {
    it->second = std::move(entry);
  } else {
    it = cache_.emplace(std::move(key), std::move(entry)).first;
  }
  return it->second.trie;
}

EvalContext::CachedPlan& EvalContext::GetPlan(const Query& query,
                                              EvalStats* stats) {
  std::string key = PlanSignature(query);
  auto it = plans_.find(key);
  if (it != plans_.end()) {
    ++plan_hits_;
    if (stats != nullptr) ++stats->plan_cache_hits;
    return it->second;
  }
  ++plan_misses_;
  if (stats != nullptr) ++stats->plan_cache_misses;
  CachedPlan plan;
  plan.probe = ProbeLowWidthStructure(query);
  if (stats != nullptr && plan.probe.probe_ran) ++stats->treewidth_probe_runs;
  return plans_.emplace(std::move(key), std::move(plan)).first->second;
}

}  // namespace cqbounds
