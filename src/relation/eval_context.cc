#include "relation/eval_context.h"

#include <functional>
#include <sstream>

#include "relation/evaluate.h"

namespace cqbounds {

namespace {

/// Canonical spelling of a query's shape: everything
/// ProbeLowWidthStructure reads (variable count, atom relation names,
/// per-atom variable ids). Two queries with equal signatures have
/// identical variable-intersection graphs, so they share one plan entry --
/// e.g. the same parsed query object evaluated many times, or two parses
/// of the same text (ParseQuery interns variables in order of appearance).
/// Relation names are length-prefixed: Query places no character
/// restrictions on them, so a name containing the signature's own
/// separators must not let two distinct shapes collide on one key.
std::string PlanSignature(const Query& query) {
  std::ostringstream os;
  os << query.num_variables() << '|';
  for (const Atom& atom : query.atoms()) {
    os << atom.relation.size() << ':' << atom.relation << '(';
    for (std::size_t i = 0; i < atom.vars.size(); ++i) {
      if (i != 0) os << ',';
      os << atom.vars[i];
    }
    os << ");";
  }
  return os.str();
}

}  // namespace

EvalContext::Shard& EvalContext::ShardFor(const Key& key) {
  // Name + layout shape: two layouts of one relation land on (usually)
  // different stripes, so even single-relation self-join workloads spread.
  std::size_t h = std::hash<std::string>{}(key.first);
  for (const std::vector<int>& level : key.second) {
    h = h * 1315423911u + level.size();
    for (int p : level) h = h * 2654435761u + static_cast<std::size_t>(p) + 1;
  }
  return shards_[h % kNumShards];
}

std::shared_ptr<const TrieIndex> EvalContext::GetTrie(
    const Relation& rel, const std::vector<std::vector<int>>& level_positions,
    EvalStats* stats) {
  // Identity, not name equality: a same-named relation from another
  // database can coincide in generation, and serving it a "hit" would
  // silently return a trie over different tuples.
  CQB_CHECK(OwnsRelation(rel) &&
            "relation does not belong to the context's database");
  Key key{rel.name(), level_positions};
  Shard& shard = ShardFor(key);
  const std::uint64_t generation = rel.generation();
  std::shared_ptr<const TrieIndex> stale_base;
  std::uint64_t stale_base_generation = 0;
  bool appends_only = false;
  {
    MutexLock lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      if (it->second.generation == generation) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        if (stats != nullptr) ++stats->trie_cache_hits;
        return it->second.trie;
      }
      // Stale entry: snapshot it as a delta base. Appends-only windows take
      // the pure merge path below; otherwise DeltasSince decides whether the
      // journal can still name both delta sides (unpatch) or a structural
      // break forces the rebuild. Either way the rows named are stable
      // because mutations never overlap evaluations.
      stale_base = it->second.trie;
      stale_base_generation = it->second.generation;
      appends_only = rel.AppendsOnlySince(stale_base_generation);
    }
  }
  // Build outside the stripe lock: a slow cold build must not block other
  // threads' hits on same-stripe keys. Two threads racing the same stale
  // entry may both build -- from the same relation state (mutations are
  // excluded during evaluation), so either result is correct; last insert
  // wins and the loser's trie lives on via its own shared_ptr.
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (stats != nullptr) ++stats->trie_cache_misses;
  std::shared_ptr<const TrieIndex> trie;
  Relation::DeltaSet deltas;
  if (stale_base != nullptr && appends_only) {
    const Relation::AppendWindow window =
        rel.AppendedRowsSince(stale_base_generation);
    const RowView delta =
        RowView::Tail(rel.store(), window.first_row, window.count);
    patches_.fetch_add(1, std::memory_order_relaxed);
    if (stats != nullptr) {
      ++stats->trie_patches;
      stats->delta_tuples_processed += window.count;
    }
    trie = std::make_shared<const TrieIndex>(*stale_base, delta,
                                             level_positions);
  } else if (stale_base != nullptr &&
             rel.DeltasSince(stale_base_generation, &deltas)) {
    // Mixed append/remove window with every removed row's columns still
    // readable (no compaction since the snapshot): subtract the removed
    // keys from the cached trie's support counts while merging the
    // appended ones -- O(base + delta log delta), no full sort.
    RowView appended(&rel.store());
    appended.rows = std::move(deltas.appended_rows);
    RowView removed(&rel.store());
    removed.rows = std::move(deltas.removed_rows);
    unpatches_.fetch_add(1, std::memory_order_relaxed);
    if (stats != nullptr) {
      ++stats->trie_unpatches;
      stats->delta_tuples_processed += appended.size() + removed.size();
    }
    trie = std::make_shared<const TrieIndex>(*stale_base, appended, removed,
                                             level_positions);
  } else {
    rebuilds_.fetch_add(1, std::memory_order_relaxed);
    if (stats != nullptr) ++stats->trie_rebuilds;
    trie = std::make_shared<const TrieIndex>(rel, level_positions);
  }
  {
    MutexLock lock(shard.mu);
    Entry& entry = shard.entries[std::move(key)];
    entry.generation = generation;
    entry.trie = trie;
  }
  return trie;
}

EvalContext::CachedPlan& EvalContext::GetPlan(const Query& query,
                                              EvalStats* stats) {
  std::string key = PlanSignature(query);
  CachedPlan* plan;
  bool inserted;
  {
    MutexLock lock(plan_mu_);
    auto [it, is_new] = plans_.try_emplace(std::move(key));
    plan = &it->second;
    inserted = is_new;
  }
  if (inserted) {
    plan_misses_.fetch_add(1, std::memory_order_relaxed);
    if (stats != nullptr) ++stats->plan_cache_misses;
  } else {
    plan_hits_.fetch_add(1, std::memory_order_relaxed);
    if (stats != nullptr) ++stats->plan_cache_hits;
  }
  // Exactly one caller runs the (potentially exponential) probe; the rest
  // block here until it lands. The probe's TreewidthExact run is charged to
  // whichever caller executed it -- under races that may be a "hit" thread
  // that outpaced the inserter, but the total across threads is always one
  // run per shape.
  std::call_once(plan->probe_once, [plan, &query, stats] {
    plan->probe = ProbeLowWidthStructure(query);
    if (stats != nullptr && plan->probe.probe_ran) {
      ++stats->treewidth_probe_runs;
    }
  });
  return *plan;
}

std::size_t EvalContext::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    total += shard.entries.size();
  }
  return total;
}

std::size_t EvalContext::plan_size() const {
  MutexLock lock(plan_mu_);
  return plans_.size();
}

void EvalContext::Clear() {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    shard.entries.clear();
  }
  MutexLock lock(plan_mu_);
  plans_.clear();
}

}  // namespace cqbounds
