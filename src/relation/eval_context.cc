#include "relation/eval_context.h"

#include "relation/evaluate.h"

namespace cqbounds {

const TrieIndex& EvalContext::GetTrie(
    const Relation& rel, const std::vector<std::vector<int>>& level_positions,
    EvalStats* stats) {
  Key key{rel.name(), level_positions};
  auto it = cache_.find(key);
  if (it != cache_.end() && it->second.generation == rel.generation()) {
    ++hits_;
    if (stats != nullptr) ++stats->trie_cache_hits;
    return it->second.trie;
  }
  ++misses_;
  if (stats != nullptr) ++stats->trie_cache_misses;
  Entry entry{rel.generation(), TrieIndex(rel, level_positions)};
  if (it != cache_.end()) {
    it->second = std::move(entry);
  } else {
    it = cache_.emplace(std::move(key), std::move(entry)).first;
  }
  return it->second.trie;
}

}  // namespace cqbounds
