#ifndef CQBOUNDS_RELATION_EVAL_CONTEXT_H_
#define CQBOUNDS_RELATION_EVAL_CONTEXT_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "relation/database.h"
#include "relation/trie_index.h"

namespace cqbounds {

struct EvalStats;  // evaluate.h (which includes this header)

/// A per-database evaluation context memoizing the sorted-column tries the
/// generic-join executor builds per atom. Without it every
/// EvaluateGenericJoin call re-sorts every body relation from scratch --
/// fine for one-shot analysis, a serious performance bug for the
/// repeated-evaluation workloads (same database, many queries, or the same
/// query served many times) the ROADMAP targets.
///
/// Cache key: (relation name, level-position layout). The layout is the
/// trie's column permutation induced by the global variable order, so two
/// atoms -- in the same query or across queries -- that index the same
/// relation the same way share one trie (e.g. E(X,Y) and E(Y,Z) under the
/// order X<Y<Z both key E as [{0},{1}]).
///
/// Invalidation is generation-based: each entry snapshots
/// Relation::generation() at build time and is rebuilt (counted as a miss)
/// when the relation has been mutated since. The context holds a pointer to
/// its Database, whose relations live in a std::map, so cached references
/// stay stable across insertions of new relations.
///
/// Not thread-safe; use one context per evaluation thread.
class EvalContext {
 public:
  explicit EvalContext(const Database& db) : db_(&db) {}

  /// The cached trie for `rel` under `level_positions`, building (or
  /// rebuilding, if `rel` mutated since) on demand. `rel` must belong to
  /// the attached database. Hit/miss counters are bumped both on the
  /// context (lifetime totals) and in `stats` (per-call) when non-null.
  /// The reference stays valid until Clear(), context destruction, or a
  /// later GetTrie for the same (relation, layout) after the relation
  /// mutated -- the rebuild replaces the entry in place, so do not hold
  /// the reference across relation mutations.
  const TrieIndex& GetTrie(const Relation& rel,
                           const std::vector<std::vector<int>>& level_positions,
                           EvalStats* stats);

  const Database& database() const { return *db_; }

  /// Lifetime totals across every evaluation run through this context.
  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }

  /// Number of distinct (relation, layout) tries currently cached.
  std::size_t size() const { return cache_.size(); }

  /// Drops every cached trie (counters are kept).
  void Clear() { cache_.clear(); }

 private:
  using Key = std::pair<std::string, std::vector<std::vector<int>>>;
  struct Entry {
    std::uint64_t generation;
    TrieIndex trie;
  };

  const Database* db_;
  std::map<Key, Entry> cache_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace cqbounds

#endif  // CQBOUNDS_RELATION_EVAL_CONTEXT_H_
