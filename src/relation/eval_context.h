#ifndef CQBOUNDS_RELATION_EVAL_CONTEXT_H_
#define CQBOUNDS_RELATION_EVAL_CONTEXT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cq/query.h"
#include "graph/treewidth_bb.h"
#include "relation/database.h"
#include "relation/trie_index.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace cqbounds {

struct EvalStats;  // evaluate.h (which includes this header)

/// Result of ProbeLowWidthStructure (relation/evaluate.h): the query's
/// variable-intersection graph numbering plus, when certified, the
/// treewidth witness and the binding order it induces. Depends only on the
/// query's *shape* (atoms and variable layout), never on relation contents,
/// which is what makes it cacheable in the EvalContext plan tier below.
struct LowWidthProbe {
  /// Dense vertex id -> variable id of the variable-intersection graph.
  std::vector<int> body;
  /// Variable id -> dense vertex id (-1 for non-body variables).
  std::vector<int> dense;
  /// Certified exact result (width, elimination order, decomposition);
  /// only meaningful when `low_width`.
  ExactTreewidthResult tw;
  /// True iff the certified width is within kHybridWidthThreshold.
  bool low_width = false;
  /// True iff the exponential TreewidthExact engine actually ran (the graph
  /// passed the size and sparsity gates). The treewidth_probe_runs counter
  /// in EvalStats sums this per evaluation call.
  bool probe_ran = false;
  /// The reverse elimination order mapped back to variable ids -- the
  /// binding order of the tree-decomposition path. Empty unless
  /// `low_width`.
  std::vector<int> order;
};

/// A per-database evaluation context memoizing what repeated evaluations
/// would otherwise recompute from scratch, in two tiers:
///
///  1. a **trie tier**: the sorted-column tries the generic-join executor
///     builds per atom, keyed by (relation name, level-position layout) --
///     the layout is the trie's column permutation induced by the global
///     variable order, so two atoms (in the same query or across queries)
///     that index the same relation the same way share one trie;
///  2. a **plan tier**: the ProbeLowWidthStructure result (certified width,
///     decomposition, binding order) keyed by the *query shape* (atom
///     relation names + variable layout), so a warm hybrid run performs
///     zero TreewidthExact calls. Each plan entry also records the
///     relation generations observed after a semi-join reduction pass that
///     dropped nothing, letting EvaluateHybridYannakakis skip the pass
///     entirely when nothing changed since.
///
/// Invalidation: trie entries snapshot Relation::generation() at build time
/// and are refreshed (counted as a miss) when the relation mutated since.
/// The refresh is delta-aware: when every mutation since the snapshot was an
/// append (Relation::AppendsOnlySince), the stale trie is *patched* -- the
/// sorted delta is merged into the cached trie's key stream, O(base copy +
/// k log k) instead of a from-scratch O(n log n) sort (EvalStats::
/// trie_patches). A mixed append/remove window is *unpatched*: the journal's
/// DeltasSince names both sides, and the trie's per-key support counts
/// subtract removals exactly (EvalStats::trie_unpatches), same cost shape.
/// Only a hard structural break -- Clear, or a Remove that crossed the
/// tombstone-compaction threshold -- forces the full rebuild (EvalStats::
/// trie_rebuilds). Plan entries depend only on the
/// query shape and never go stale from data mutations -- only their
/// semi-join state is generation-checked per use. The context holds a
/// pointer to its Database, whose relations live in a std::map, so cached
/// references stay stable across insertions of new relations.
///
/// ## Concurrency
///
/// One context safely serves any number of concurrent evaluation threads
/// (the shared-memo-table shape of a chess engine's transposition table
/// serving N search threads):
///
///  - the trie tier is sharded into lock-striped buckets, so lookups on
///    different relations rarely contend, and entries hold the trie behind
///    a shared_ptr -- a thread holding a trie keeps it alive even while
///    another thread concurrently replaces the entry after a mutation, so
///    no reader ever observes a dangling or half-built index. Two threads
///    racing a cold (or stale) entry may both build; the duplicate build is
///    wasted work, never wrong data (both build from the same relation
///    state), and each build is still counted as a miss;
///  - the plan tier fills each entry's probe exactly once per query shape
///    (std::call_once), so concurrent first evaluations of one shape run
///    one TreewidthExact probe total, with late arrivals blocking until it
///    lands; the per-entry semi-join skip state is guarded by its own
///    mutex (see CachedPlan);
///  - lifetime counters are atomics.
///
/// What stays on the caller: **relation mutations must not overlap
/// evaluations** through the context (the standard readers-xor-writer
/// contract -- Relation itself is not a concurrent structure), `Clear()`
/// requires the same exclusivity (it invalidates outstanding plan
/// references), and an EvalStats object must not be shared between
/// concurrently evaluating threads. Interleaving is fine: mutate, then run
/// any number of parallel evaluations, then mutate again.
///
/// The intra-context part of this contract is machine-checked: every
/// mutex-guarded member carries a CQB_GUARDED_BY annotation
/// (util/thread_annotations.h), so a Clang build with
/// -DCQBOUNDS_THREAD_SAFETY=ON fails to compile any access to `entries`,
/// `plans_`, or a plan's `semijoin` state outside its lock. See
/// docs/STATIC_ANALYSIS.md.
class EvalContext {
 public:
  explicit EvalContext(const Database& db) : db_(&db) {}

  /// Cached outcome of one semi-join reduction pass under a plan: the
  /// survivor views (per-atom survivor tries for atoms that lost tuples),
  /// the per-step semi-join key *support counts* plus per-atom
  /// survivor/dropped row sets (the counting delta pass's working state),
  /// and the generation vector that keys it all. Maintained by
  /// EvaluateHybridYannakakis; every field is guarded by CachedPlan's
  /// `skip_mu`.
  struct SemijoinState {
    /// Atom i's relation generation observed when this state was computed
    /// -- the survivor-view cache key. A run whose generation vector
    /// matches reuses the survivor views outright (skipping the pass); a
    /// partial bump invalidates (delta pass or full re-pass).
    std::vector<std::uint64_t> generations;
    /// Per atom: true iff every live tuple of its relation survived the
    /// pass (no drops on record for that atom).
    std::vector<bool> all_survive;
    /// Per atom with !all_survive[i]: the survivor trie (the zero-copy
    /// filtered view, already keyed by the plan's layout for that atom);
    /// null where all_survive[i]. Immutable once published -- reuse hands
    /// out copies of the shared_ptr; the delta pass replaces the pointer,
    /// never the pointee.
    std::vector<std::shared_ptr<const TrieIndex>> survivor_tries;
    /// Per schedule step (the deterministic up+down filter order derived
    /// from the decomposition): how many of the source atom's surviving
    /// rows project onto each semi-join key. Counts -- not sets -- are what
    /// make removals O(delta): a source row leaving decrements its key, a
    /// key hitting zero kills dependent target tuples, and a key coming
    /// back from zero *revives* target tuples dropped at exactly that step,
    /// all without re-scanning the database. Populated by every full pass
    /// and maintained by every delta pass, clean or dirty.
    std::vector<std::unordered_map<Tuple, std::uint32_t, TupleHash>>
        step_counts;
    /// Per atom: the surviving row ids, sorted ascending. The delta pass
    /// edits this row set in place (merge appends, drop kills) and
    /// re-derives the survivor trie from the old one.
    std::vector<std::vector<std::uint32_t>> survivors;
    /// Per atom: rows the pass dropped, as (row id, first schedule step
    /// whose key set rejected it), sorted by row id. The recorded step is
    /// what lets a key-reappearance revive exactly the rows it dangled.
    std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> dropped;
  };

  /// One plan-tier entry. `probe` is filled exactly once (concurrent
  /// GetPlan calls for one shape run one probe, the rest wait) and is
  /// immutable afterwards; the semi-join state is maintained by
  /// EvaluateHybridYannakakis after each reduction pass and must only be
  /// touched with `skip_mu` held.
  struct CachedPlan {
    LowWidthProbe probe;
    /// Last completed reduction pass's outcome, or null before the first
    /// pass. Guarded by `skip_mu` (pointer and pointee -- the analysis
    /// rejects both unlocked reseats and unlocked dereferences); the hybrid
    /// executor holds `skip_mu` across a (delta or full) pass, so
    /// concurrent post-mutation runs of one shape serialize the pass and
    /// late arrivals reuse the fresh state instead of duplicating it.
    std::unique_ptr<SemijoinState> semijoin CQB_GUARDED_BY(skip_mu)
        CQB_PT_GUARDED_BY(skip_mu);
    /// Guards `semijoin` against concurrent hybrid evaluations of the same
    /// shape.
    Mutex skip_mu;
    /// Fills `probe` exactly once (GetPlan); `probe` is immutable
    /// afterwards, which is why it needs no capability of its own.
    std::once_flag probe_once;
  };

  /// The cached trie for `rel` under `level_positions`, building (or
  /// refreshing, if `rel` mutated since -- a delta patch when the mutations
  /// were appends-only, a support-count unpatch when the journal can name
  /// the mixed append/remove delta, a full rebuild only past a structural
  /// break) on demand. `rel` must
  /// belong to
  /// the attached database -- checked by identity, not by name, and
  /// enforced with CQB_CHECK: a same-named relation from another database
  /// can coincide in generation, and serving it a "hit" would silently
  /// return a trie over different tuples. Hit/miss counters are bumped both
  /// on the context (lifetime totals) and in `stats` (per-call) when
  /// non-null.
  ///
  /// The returned trie is immutable and stays alive for as long as the
  /// caller holds the pointer, even if the entry is concurrently (or
  /// later) rebuilt after a relation mutation -- the rebuild swaps the
  /// entry's shared_ptr, it never touches the old index.
  std::shared_ptr<const TrieIndex> GetTrie(
      const Relation& rel, const std::vector<std::vector<int>>& level_positions,
      EvalStats* stats);

  /// The cached plan for `query`'s shape, running ProbeLowWidthStructure on
  /// first use (a plan miss; the probe's TreewidthExact run, if any, lands
  /// in `stats->treewidth_probe_runs` of whichever caller executed it).
  /// Warm calls are a keyed map lookup under a short lock: zero graph
  /// builds, zero treewidth probes. The returned reference stays valid
  /// until Clear() or context destruction; only its skip state
  /// (reduction_clean / clean_generations, under skip_mu) may be updated in
  /// place by the hybrid executor.
  CachedPlan& GetPlan(const Query& query, EvalStats* stats);

  /// True iff `rel` is the attached database's relation of that name (the
  /// identity GetTrie enforces).
  bool OwnsRelation(const Relation& rel) const {
    return db_->Find(rel.name()) == &rel;
  }

  const Database& database() const { return *db_; }

  /// Lifetime totals across every evaluation run through this context.
  std::size_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::size_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::size_t plan_hits() const {
    return plan_hits_.load(std::memory_order_relaxed);
  }
  std::size_t plan_misses() const {
    return plan_misses_.load(std::memory_order_relaxed);
  }
  /// Of the lifetime misses: how many were served by patching a stale
  /// cached trie (appends-only delta merge), by unpatching one (mixed
  /// append/remove delta with support-count subtraction), or by rebuilding
  /// from scratch. patches() + unpatches() + rebuilds() == misses() for
  /// this tier.
  std::size_t patches() const {
    return patches_.load(std::memory_order_relaxed);
  }
  std::size_t unpatches() const {
    return unpatches_.load(std::memory_order_relaxed);
  }
  std::size_t rebuilds() const {
    return rebuilds_.load(std::memory_order_relaxed);
  }

  /// Number of distinct (relation, layout) tries currently cached.
  std::size_t size() const;
  /// Number of distinct query shapes currently cached in the plan tier.
  std::size_t plan_size() const;

  /// Drops every cached trie and plan (counters are kept). Requires
  /// exclusive access: no concurrent evaluation may be running, and plan
  /// references obtained earlier are invalidated.
  void Clear();

 private:
  using Key = std::pair<std::string, std::vector<std::vector<int>>>;
  struct Entry {
    std::uint64_t generation = 0;
    std::shared_ptr<const TrieIndex> trie;
  };

  /// Lock striping: keys hash onto a fixed set of independently locked
  /// buckets, so concurrent lookups of different relations (or layouts)
  /// proceed without contention. 16 shards is plenty for the handful of
  /// atoms per query; the stripe count only bounds *lock* parallelism, not
  /// entry capacity.
  static constexpr std::size_t kNumShards = 16;
  struct Shard {
    mutable Mutex mu;
    std::map<Key, Entry> entries CQB_GUARDED_BY(mu);
  };

  Shard& ShardFor(const Key& key);

  const Database* db_;
  Shard shards_[kNumShards];
  /// Guards the plans_ *map structure* (insertions, Clear), never the
  /// entries behind it: GetPlan hands out stable CachedPlan references
  /// whose mutable state has its own per-plan capability (skip_mu).
  mutable Mutex plan_mu_;
  std::map<std::string, CachedPlan> plans_ CQB_GUARDED_BY(plan_mu_);
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> patches_{0};
  std::atomic<std::size_t> unpatches_{0};
  std::atomic<std::size_t> rebuilds_{0};
  std::atomic<std::size_t> plan_hits_{0};
  std::atomic<std::size_t> plan_misses_{0};
};

}  // namespace cqbounds

#endif  // CQBOUNDS_RELATION_EVAL_CONTEXT_H_
