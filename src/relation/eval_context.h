#ifndef CQBOUNDS_RELATION_EVAL_CONTEXT_H_
#define CQBOUNDS_RELATION_EVAL_CONTEXT_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cq/query.h"
#include "graph/treewidth_bb.h"
#include "relation/database.h"
#include "relation/trie_index.h"

namespace cqbounds {

struct EvalStats;  // evaluate.h (which includes this header)

/// Result of ProbeLowWidthStructure (relation/evaluate.h): the query's
/// variable-intersection graph numbering plus, when certified, the
/// treewidth witness and the binding order it induces. Depends only on the
/// query's *shape* (atoms and variable layout), never on relation contents,
/// which is what makes it cacheable in the EvalContext plan tier below.
struct LowWidthProbe {
  /// Dense vertex id -> variable id of the variable-intersection graph.
  std::vector<int> body;
  /// Variable id -> dense vertex id (-1 for non-body variables).
  std::vector<int> dense;
  /// Certified exact result (width, elimination order, decomposition);
  /// only meaningful when `low_width`.
  ExactTreewidthResult tw;
  /// True iff the certified width is within kHybridWidthThreshold.
  bool low_width = false;
  /// True iff the exponential TreewidthExact engine actually ran (the graph
  /// passed the size and sparsity gates). The treewidth_probe_runs counter
  /// in EvalStats sums this per evaluation call.
  bool probe_ran = false;
  /// The reverse elimination order mapped back to variable ids -- the
  /// binding order of the tree-decomposition path. Empty unless
  /// `low_width`.
  std::vector<int> order;
};

/// A per-database evaluation context memoizing what repeated evaluations
/// would otherwise recompute from scratch, in two tiers:
///
///  1. a **trie tier**: the sorted-column tries the generic-join executor
///     builds per atom, keyed by (relation name, level-position layout) --
///     the layout is the trie's column permutation induced by the global
///     variable order, so two atoms (in the same query or across queries)
///     that index the same relation the same way share one trie;
///  2. a **plan tier**: the ProbeLowWidthStructure result (certified width,
///     decomposition, binding order) keyed by the *query shape* (atom
///     relation names + variable layout), so a warm hybrid run performs
///     zero TreewidthExact calls. Each plan entry also records the
///     relation generations observed after a semi-join reduction pass that
///     dropped nothing, letting EvaluateHybridYannakakis skip the pass
///     entirely when nothing changed since.
///
/// Invalidation: trie entries snapshot Relation::generation() at build time
/// and are rebuilt (counted as a miss) when the relation mutated since.
/// Plan entries depend only on the query shape and never go stale from data
/// mutations -- only their semi-join skip state is generation-checked per
/// use. The context holds a pointer to its Database, whose relations live
/// in a std::map, so cached references stay stable across insertions of new
/// relations.
///
/// Not thread-safe; use one context per evaluation thread.
class EvalContext {
 public:
  explicit EvalContext(const Database& db) : db_(&db) {}

  /// One plan-tier entry. `probe` is immutable once cached; the skip state
  /// is maintained by EvaluateHybridYannakakis after each reduction pass.
  struct CachedPlan {
    LowWidthProbe probe;
    /// True when the last completed reduction pass under this plan dropped
    /// nothing; `clean_generations[i]` then holds atom i's relation
    /// generation observed at that pass. A later run whose generations all
    /// match can skip the pass outright -- it would provably drop nothing
    /// again. Any generation bump (or a pass that dropped tuples) forces a
    /// re-reduce.
    bool reduction_clean = false;
    std::vector<std::uint64_t> clean_generations;
  };

  /// The cached trie for `rel` under `level_positions`, building (or
  /// rebuilding, if `rel` mutated since) on demand. `rel` must belong to
  /// the attached database -- checked by identity, not by name, and
  /// enforced with CQB_CHECK: a same-named relation from another database
  /// can coincide in generation, and serving it a "hit" would silently
  /// return a trie over different tuples. Hit/miss counters are bumped both
  /// on the context (lifetime totals) and in `stats` (per-call) when
  /// non-null. The reference stays valid until Clear(), context
  /// destruction, or a later GetTrie for the same (relation, layout) after
  /// the relation mutated -- the rebuild replaces the entry in place, so do
  /// not hold the reference across relation mutations.
  const TrieIndex& GetTrie(const Relation& rel,
                           const std::vector<std::vector<int>>& level_positions,
                           EvalStats* stats);

  /// The cached plan for `query`'s shape, running ProbeLowWidthStructure on
  /// first use (a plan miss; the probe's TreewidthExact run, if any, lands
  /// in `stats->treewidth_probe_runs`). Warm calls are pure map lookups:
  /// zero graph builds, zero treewidth probes. The returned reference stays
  /// valid until Clear() or context destruction; only its skip state
  /// (reduction_clean / clean_generations) may be updated in place by the
  /// hybrid executor.
  CachedPlan& GetPlan(const Query& query, EvalStats* stats);

  /// True iff `rel` is the attached database's relation of that name (the
  /// identity GetTrie enforces).
  bool OwnsRelation(const Relation& rel) const {
    return db_->Find(rel.name()) == &rel;
  }

  const Database& database() const { return *db_; }

  /// Lifetime totals across every evaluation run through this context.
  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }
  std::size_t plan_hits() const { return plan_hits_; }
  std::size_t plan_misses() const { return plan_misses_; }

  /// Number of distinct (relation, layout) tries currently cached.
  std::size_t size() const { return cache_.size(); }
  /// Number of distinct query shapes currently cached in the plan tier.
  std::size_t plan_size() const { return plans_.size(); }

  /// Drops every cached trie and plan (counters are kept).
  void Clear() {
    cache_.clear();
    plans_.clear();
  }

 private:
  using Key = std::pair<std::string, std::vector<std::vector<int>>>;
  struct Entry {
    std::uint64_t generation;
    TrieIndex trie;
  };

  const Database* db_;
  std::map<Key, Entry> cache_;
  std::map<std::string, CachedPlan> plans_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t plan_hits_ = 0;
  std::size_t plan_misses_ = 0;
};

}  // namespace cqbounds

#endif  // CQBOUNDS_RELATION_EVAL_CONTEXT_H_
