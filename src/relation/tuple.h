#ifndef CQBOUNDS_RELATION_TUPLE_H_
#define CQBOUNDS_RELATION_TUPLE_H_

#include <cstdint>
#include <vector>

namespace cqbounds {

/// Domain values are interned 64-bit ids. The universe U_D of a database is
/// whatever ids its tuples mention; a `ValuePool` (database.h) optionally
/// maps ids back to human-readable spellings.
using Value = std::int64_t;

/// A database tuple: a fixed-arity list of values.
using Tuple = std::vector<Value>;

/// FNV-1a style hash for tuples, usable with unordered containers.
struct TupleHash {
  std::size_t operator()(const Tuple& t) const {
    std::uint64_t h = 1469598103934665603ull;
    for (Value v : t) {
      h ^= static_cast<std::uint64_t>(v);
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace cqbounds

#endif  // CQBOUNDS_RELATION_TUPLE_H_
