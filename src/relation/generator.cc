#include "relation/generator.h"

#include <map>
#include <set>

namespace cqbounds {

void FillRandomRelation(Database* db, const std::string& name, int arity,
                        std::size_t count, std::int64_t domain_size,
                        Rng* rng) {
  Relation* rel = db->AddRelation(name, arity);
  // Generators own their naming scheme, so an arity conflict here is a
  // caller bug, not recoverable input.
  CQB_CHECK(rel != nullptr && "arity conflict with an existing relation");
  Tuple t(arity);
  for (std::size_t i = 0; i < count; ++i) {
    for (int j = 0; j < arity; ++j) {
      t[j] = static_cast<Value>(
          rng->NextBelow(static_cast<std::uint64_t>(domain_size)));
    }
    rel->Insert(t);
  }
}

Database RandomDatabase(const Query& query,
                        const RandomDatabaseOptions& opts) {
  Database db;
  Rng rng(opts.seed);
  std::set<std::string> done;
  for (const Atom& atom : query.atoms()) {
    if (!done.insert(atom.relation).second) continue;
    FillRandomRelation(&db, atom.relation,
                       static_cast<int>(atom.vars.size()),
                       opts.tuples_per_relation, opts.domain_size, &rng);
  }
  // FD repair to a fixpoint: rewrite rhs values to the first-seen value for
  // each lhs key. A single pass can break a previously-enforced FD on the
  // same relation, so iterate until stable.
  bool changed = true;
  int guard = 0;
  while (changed && guard++ < 1000) {
    changed = false;
    for (const FunctionalDependency& fd : query.fds()) {
      Relation* rel = db.FindMutable(fd.relation);
      if (rel == nullptr) continue;
      std::map<Tuple, Value> canonical;
      Relation repaired(rel->name(), rel->arity());
      bool rewrote = false;
      for (const Tuple& t : rel->tuples()) {
        Tuple key;
        key.reserve(fd.lhs.size());
        for (int pos : fd.lhs) key.push_back(t[pos]);
        auto [it, inserted] = canonical.emplace(std::move(key), t[fd.rhs]);
        Tuple fixed = t;
        if (!inserted && fixed[fd.rhs] != it->second) {
          fixed[fd.rhs] = it->second;
          rewrote = true;
        }
        repaired.Insert(fixed);
      }
      if (rewrote) {
        *rel = std::move(repaired);
        changed = true;
      }
    }
  }
  return db;
}


Database StarTriangleDatabase(int spokes, const std::string& name) {
  Database db;
  Relation* e = db.AddRelation(name, 2);
  for (int i = 1; i <= spokes; ++i) {
    e->Insert({0, i});
    e->Insert({i, 0});
  }
  e->Insert({spokes + 1, spokes + 2});
  e->Insert({spokes + 2, spokes + 3});
  e->Insert({spokes + 3, spokes + 1});
  return db;
}

}  // namespace cqbounds
