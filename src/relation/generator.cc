#include "relation/generator.h"

#include <map>
#include <set>

namespace cqbounds {

void FillRandomRelation(Database* db, const std::string& name, int arity,
                        std::size_t count, std::int64_t domain_size,
                        Rng* rng) {
  Relation* rel = db->AddRelation(name, arity);
  // Generators own their naming scheme, so an arity conflict here is a
  // caller bug, not recoverable input.
  CQB_CHECK(rel != nullptr && "arity conflict with an existing relation");
  // Bulk path: draw into one flat row-major buffer (same rng draw order as
  // a per-tuple loop, so seeds reproduce the same instance), then a single
  // batch insert with one dedup pass and one journal bump.
  std::vector<Value> flat;
  flat.reserve(count * static_cast<std::size_t>(arity));
  for (std::size_t i = 0; i < count; ++i) {
    for (int j = 0; j < arity; ++j) {
      flat.push_back(static_cast<Value>(
          rng->NextBelow(static_cast<std::uint64_t>(domain_size))));
    }
  }
  rel->InsertFlat(flat, count);
}

Database RandomDatabase(const Query& query,
                        const RandomDatabaseOptions& opts) {
  Database db;
  Rng rng(opts.seed);
  std::set<std::string> done;
  for (const Atom& atom : query.atoms()) {
    if (!done.insert(atom.relation).second) continue;
    FillRandomRelation(&db, atom.relation,
                       static_cast<int>(atom.vars.size()),
                       opts.tuples_per_relation, opts.domain_size, &rng);
  }
  // FD repair to a fixpoint: rewrite rhs values to the first-seen value for
  // each lhs key. A single pass can break a previously-enforced FD on the
  // same relation, so iterate until stable.
  bool changed = true;
  int guard = 0;
  while (changed && guard++ < 1000) {
    changed = false;
    for (const FunctionalDependency& fd : query.fds()) {
      Relation* rel = db.FindMutable(fd.relation);
      if (rel == nullptr) continue;
      const ColumnStore& store = rel->store();
      std::map<Tuple, Value> canonical;
      std::vector<Value> repaired_flat;
      repaired_flat.reserve(rel->size() * static_cast<std::size_t>(rel->arity()));
      bool rewrote = false;
      Tuple key(fd.lhs.size());
      std::size_t live_rows = 0;
      for (std::size_t row = 0; row < store.size(); ++row) {
        if (!store.IsLive(row)) continue;
        ++live_rows;
        for (std::size_t i = 0; i < fd.lhs.size(); ++i) {
          key[i] = store.ValueAt(row, fd.lhs[i]);
        }
        auto [it, inserted] = canonical.emplace(key, store.ValueAt(row, fd.rhs));
        for (int c = 0; c < rel->arity(); ++c) {
          Value v = store.ValueAt(row, c);
          if (c == fd.rhs && !inserted && v != it->second) {
            v = it->second;
            rewrote = true;
          }
          repaired_flat.push_back(v);
        }
      }
      if (rewrote) {
        Relation repaired(rel->name(), rel->arity());
        repaired.InsertFlat(repaired_flat, live_rows);
        *rel = std::move(repaired);
        changed = true;
      }
    }
  }
  return db;
}


Database StarTriangleDatabase(int spokes, const std::string& name) {
  Database db;
  Relation* e = db.AddRelation(name, 2);
  for (int i = 1; i <= spokes; ++i) {
    e->Insert({0, i});
    e->Insert({i, 0});
  }
  e->Insert({spokes + 1, spokes + 2});
  e->Insert({spokes + 2, spokes + 3});
  e->Insert({spokes + 3, spokes + 1});
  return db;
}

}  // namespace cqbounds
