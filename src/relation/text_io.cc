#include "relation/text_io.h"

#include <cctype>
#include <map>
#include <sstream>
#include <vector>

namespace cqbounds {

namespace {

/// Characters that would corrupt the line-oriented format if written
/// verbatim inside a token: the tokenizer's separators (whitespace), the
/// comment introducer, the escape character itself, and control characters
/// (which survive a write but make the file hostile to every other tool).
bool NeedsEscape(char c) {
  const unsigned char u = static_cast<unsigned char>(c);
  return c == '%' || c == '#' || std::isspace(u) || std::iscntrl(u);
}

/// Percent-encodes `spelling` so it survives as one whitespace-delimited
/// token: unsafe bytes become %XX (uppercase hex), and the empty spelling
/// -- which would otherwise vanish between separators -- becomes the bare
/// token "%". Safe spellings pass through unchanged, so files of ordinary
/// integer values look exactly as before.
std::string EscapeToken(const std::string& spelling) {
  if (spelling.empty()) return "%";
  static const char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(spelling.size());
  for (char c : spelling) {
    if (NeedsEscape(c)) {
      const unsigned char u = static_cast<unsigned char>(c);
      out += '%';
      out += kHex[u >> 4];
      out += kHex[u & 0xF];
    } else {
      out += c;
    }
  }
  return out;
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

/// Inverse of EscapeToken. A malformed escape (stray '%' not followed by
/// two hex digits) is a parse error, not silently passed through -- a file
/// containing one was not produced by WriteDatabaseText and guessing at
/// its intent would corrupt the value space silently.
Result<std::string> UnescapeToken(const std::string& token, int line_number) {
  if (token == "%") return std::string();
  std::string out;
  out.reserve(token.size());
  for (std::size_t i = 0; i < token.size(); ++i) {
    if (token[i] != '%') {
      out += token[i];
      continue;
    }
    if (i + 2 >= token.size()) {
      return Status::ParseError("line " + std::to_string(line_number) +
                                ": truncated %XX escape in token '" + token +
                                "'");
    }
    const int hi = HexDigit(token[i + 1]);
    const int lo = HexDigit(token[i + 2]);
    if (hi < 0 || lo < 0) {
      return Status::ParseError("line " + std::to_string(line_number) +
                                ": invalid %XX escape in token '" + token +
                                "'");
    }
    out += static_cast<char>((hi << 4) | lo);
    i += 2;
  }
  return out;
}

/// Relation names are schema identifiers, not data: they appear unescaped
/// in both the declaration line and every tuple line, so a name the
/// tokenizer would split (whitespace), comment away ('#'), mis-decode
/// ('%'), drop (empty) or mistake for the declaration keyword cannot be
/// represented in the format at all. Rejecting it at write time turns a
/// silent corrupt-on-write into a recoverable error.
Status CheckWritableRelationName(const std::string& name) {
  if (name.empty()) {
    return Status::FailedPrecondition(
        "cannot write relation with empty name");
  }
  if (name == "relation") {
    return Status::FailedPrecondition(
        "cannot write relation named 'relation' (the declaration keyword)");
  }
  for (char c : name) {
    if (NeedsEscape(c)) {
      return Status::FailedPrecondition(
          "cannot write relation name '" + name +
          "': contains whitespace, '#', '%' or control characters");
    }
  }
  return Status::OK();
}

}  // namespace

Status ReadDatabaseText(std::istream& in, Database* db) {
  // Bulk ingestion: tuple lines are parsed into per-relation flat column
  // builders (row-major values, one vector per relation) and flushed in one
  // InsertFlat batch per relation at end of input -- a single dedup pass
  // over the appended block instead of a per-tuple hash insert. Arity and
  // escape errors still carry their line numbers (checked during the
  // parse); on error nothing is flushed.
  struct PendingRows {
    Relation* rel = nullptr;
    std::vector<Value> flat;
    std::size_t rows = 0;
  };
  std::vector<PendingRows> pending;  // in first-tuple-seen relation order
  std::map<Relation*, std::size_t> pending_index;

  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream tokens(line);
    std::string first;
    if (!(tokens >> first)) continue;  // blank line
    if (first == "relation") {
      std::string name;
      int arity = -1;
      if (!(tokens >> name >> arity) || arity < 0) {
        return Status::ParseError("line " + std::to_string(line_number) +
                                  ": expected 'relation NAME ARITY'");
      }
      if (db->AddRelation(name, arity) == nullptr) {
        return Status::ParseError("line " + std::to_string(line_number) +
                                  ": relation '" + name +
                                  "' re-declared with different arity");
      }
      continue;
    }
    Relation* rel = db->FindMutable(first);
    if (rel == nullptr) {
      return Status::ParseError("line " + std::to_string(line_number) +
                                ": tuple for undeclared relation '" + first +
                                "'");
    }
    auto [it, inserted] = pending_index.emplace(rel, pending.size());
    if (inserted) {
      pending.emplace_back();
      pending.back().rel = rel;
    }
    PendingRows& rows = pending[it->second];
    std::string token;
    std::size_t width = 0;
    while (tokens >> token) {
      std::string spelling;
      CQB_ASSIGN_OR_RETURN(spelling, UnescapeToken(token, line_number));
      rows.flat.push_back(db->value_pool()->Intern(spelling));
      ++width;
    }
    if (static_cast<int>(width) != rel->arity()) {
      return Status::ParseError(
          "line " + std::to_string(line_number) + ": tuple of arity " +
          std::to_string(width) + " for relation '" + first + "' of arity " +
          std::to_string(rel->arity()));
    }
    ++rows.rows;
  }
  for (PendingRows& rows : pending) {
    rows.rel->InsertFlat(rows.flat, rows.rows);
  }
  return Status::OK();
}

Status ReadDatabaseTextFromString(const std::string& text, Database* db) {
  std::istringstream in(text);
  return ReadDatabaseText(in, db);
}

Status WriteDatabaseText(const Database& db, std::ostream& out) {
  const ValuePool& pool = db.value_pool();
  const Value pool_size = static_cast<Value>(pool.size());
  for (const auto& [name, rel] : db.relations()) {
    CQB_RETURN_NOT_OK(CheckWritableRelationName(name));
    out << "relation " << name << " " << rel.arity() << "\n";
    const ColumnStore& store = rel.store();
    for (std::size_t row = 0; row < store.size(); ++row) {
      out << name;
      for (int c = 0; c < rel.arity(); ++c) {
        const Value v = store.ValueAt(row, c);
        if (v < 0 || v >= pool_size) {
          // Spelling() would render the "?<id>" fallback, which reads back
          // as a *different* value -- the silent round-trip corruption this
          // error replaces.
          return Status::FailedPrecondition(
              "relation '" + name + "' holds value id " + std::to_string(v) +
              " that was never interned in the database's pool");
        }
        out << " " << EscapeToken(pool.Spelling(v));
      }
      out << "\n";
    }
  }
  return Status::OK();
}

Result<std::string> WriteDatabaseTextToString(const Database& db) {
  std::ostringstream out;
  CQB_RETURN_NOT_OK(WriteDatabaseText(db, out));
  return out.str();
}

}  // namespace cqbounds
