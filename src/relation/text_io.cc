#include "relation/text_io.h"

#include <sstream>
#include <vector>

namespace cqbounds {

Status ReadDatabaseText(std::istream& in, Database* db) {
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream tokens(line);
    std::string first;
    if (!(tokens >> first)) continue;  // blank line
    if (first == "relation") {
      std::string name;
      int arity = -1;
      if (!(tokens >> name >> arity) || arity < 0) {
        return Status::ParseError("line " + std::to_string(line_number) +
                                  ": expected 'relation NAME ARITY'");
      }
      const Relation* existing = db->Find(name);
      if (existing != nullptr && existing->arity() != arity) {
        return Status::ParseError("line " + std::to_string(line_number) +
                                  ": relation '" + name +
                                  "' re-declared with different arity");
      }
      db->AddRelation(name, arity);
      continue;
    }
    Relation* rel = db->FindMutable(first);
    if (rel == nullptr) {
      return Status::ParseError("line " + std::to_string(line_number) +
                                ": tuple for undeclared relation '" + first +
                                "'");
    }
    Tuple t;
    std::string token;
    while (tokens >> token) {
      t.push_back(db->value_pool()->Intern(token));
    }
    if (static_cast<int>(t.size()) != rel->arity()) {
      return Status::ParseError(
          "line " + std::to_string(line_number) + ": tuple of arity " +
          std::to_string(t.size()) + " for relation '" + first +
          "' of arity " + std::to_string(rel->arity()));
    }
    rel->Insert(t);
  }
  return Status::OK();
}

Status ReadDatabaseTextFromString(const std::string& text, Database* db) {
  std::istringstream in(text);
  return ReadDatabaseText(in, db);
}

void WriteDatabaseText(const Database& db, std::ostream& out) {
  for (const auto& [name, rel] : db.relations()) {
    out << "relation " << name << " " << rel.arity() << "\n";
    for (const Tuple& t : rel.tuples()) {
      out << name;
      for (Value v : t) out << " " << db.value_pool().Spelling(v);
      out << "\n";
    }
  }
}

std::string WriteDatabaseTextToString(const Database& db) {
  std::ostringstream out;
  WriteDatabaseText(db, out);
  return out.str();
}

}  // namespace cqbounds
