#include "relation/text_io.h"

#include <cctype>
#include <charconv>
#include <cstring>
#include <iterator>
#include <map>
#include <sstream>
#include <vector>

namespace cqbounds {

namespace {

/// Characters that would corrupt the line-oriented format if written
/// verbatim inside a token: the tokenizer's separators (whitespace), the
/// comment introducer, the escape character itself, and control characters
/// (which survive a write but make the file hostile to every other tool).
bool NeedsEscape(char c) {
  const unsigned char u = static_cast<unsigned char>(c);
  return c == '%' || c == '#' || std::isspace(u) || std::iscntrl(u);
}

/// Percent-encodes `spelling` so it survives as one whitespace-delimited
/// token: unsafe bytes become %XX (uppercase hex), and the empty spelling
/// -- which would otherwise vanish between separators -- becomes the bare
/// token "%". Safe spellings pass through unchanged, so files of ordinary
/// integer values look exactly as before.
std::string EscapeToken(const std::string& spelling) {
  if (spelling.empty()) return "%";
  static const char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(spelling.size());
  for (char c : spelling) {
    if (NeedsEscape(c)) {
      const unsigned char u = static_cast<unsigned char>(c);
      out += '%';
      out += kHex[u >> 4];
      out += kHex[u & 0xF];
    } else {
      out += c;
    }
  }
  return out;
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

/// Inverse of EscapeToken over a buffer slice, decoding into the caller's
/// reused scratch string (the streamed reader parses 10^5+ tokens; a fresh
/// std::string per token would dominate the parse). Escape-free tokens --
/// the overwhelmingly common case for ordinary integer values -- take a
/// single assign. A malformed escape (stray '%' not followed by two hex
/// digits) is a parse error, not silently passed through -- a file
/// containing one was not produced by WriteDatabaseText and guessing at
/// its intent would corrupt the value space silently.
Status UnescapeTokenInto(const char* tok, const char* end, int line_number,
                         std::string* out) {
  if (end - tok == 1 && *tok == '%') {
    out->clear();
    return Status::OK();
  }
  const char* pct = static_cast<const char*>(
      std::memchr(tok, '%', static_cast<std::size_t>(end - tok)));
  if (pct == nullptr) {
    out->assign(tok, static_cast<std::size_t>(end - tok));
    return Status::OK();
  }
  out->clear();
  for (const char* c = tok; c < end; ++c) {
    if (*c != '%') {
      *out += *c;
      continue;
    }
    if (c + 2 >= end) {
      return Status::ParseError("line " + std::to_string(line_number) +
                                ": truncated %XX escape in token '" +
                                std::string(tok, end) + "'");
    }
    const int hi = HexDigit(c[1]);
    const int lo = HexDigit(c[2]);
    if (hi < 0 || lo < 0) {
      return Status::ParseError("line " + std::to_string(line_number) +
                                ": invalid %XX escape in token '" +
                                std::string(tok, end) + "'");
    }
    *out += static_cast<char>((hi << 4) | lo);
    c += 2;
  }
  return Status::OK();
}

/// Relation names are schema identifiers, not data: they appear unescaped
/// in both the declaration line and every tuple line, so a name the
/// tokenizer would split (whitespace), comment away ('#'), mis-decode
/// ('%'), drop (empty) or mistake for the declaration keyword cannot be
/// represented in the format at all. Rejecting it at write time turns a
/// silent corrupt-on-write into a recoverable error.
Status CheckWritableRelationName(const std::string& name) {
  if (name.empty()) {
    return Status::FailedPrecondition(
        "cannot write relation with empty name");
  }
  if (name == "relation") {
    return Status::FailedPrecondition(
        "cannot write relation named 'relation' (the declaration keyword)");
  }
  for (char c : name) {
    if (NeedsEscape(c)) {
      return Status::FailedPrecondition(
          "cannot write relation name '" + name +
          "': contains whitespace, '#', '%' or control characters");
    }
  }
  return Status::OK();
}

}  // namespace

Status ReadDatabaseText(std::istream& in, Database* db) {
  // Streamed bulk ingestion. The whole input is slurped into one flat
  // buffer and tokenized in place with pointer scans -- no per-line stream
  // extraction and no per-token string construction (one scratch spelling
  // is reused across all tokens; the previous getline + istringstream loop
  // allocated several strings per line). Tuple lines are parsed into
  // per-relation flat column builders (row-major values, one vector per
  // relation) and flushed in one InsertFlat batch per relation at end of
  // input -- a single dedup pass over the appended block instead of a
  // per-tuple hash insert. Arity and escape errors still carry their line
  // numbers (checked during the parse); on error nothing is flushed.
  struct PendingRows {
    Relation* rel = nullptr;
    std::vector<Value> flat;
    std::size_t rows = 0;
  };
  std::vector<PendingRows> pending;  // in first-tuple-seen relation order
  std::map<Relation*, std::size_t> pending_index;

  const std::string buf{std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>()};
  const char* p = buf.data();
  const char* const buf_end = p + buf.size();
  int line_number = 0;
  std::string scratch;
  // Tuple files cluster lines by relation, so one cached (name -> pending
  // slot) pair short-circuits nearly every map lookup. An index, not a
  // pointer: pending reallocates as new relations appear.
  std::string last_name;
  std::size_t last_slot = static_cast<std::size_t>(-1);

  // '\n' terminates the line itself and cannot appear here.
  const auto is_sep = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f';
  };

  while (p < buf_end) {
    ++line_number;
    const char* nl = static_cast<const char*>(
        std::memchr(p, '\n', static_cast<std::size_t>(buf_end - p)));
    const char* const next_line = (nl != nullptr) ? nl + 1 : buf_end;
    const char* line_end = (nl != nullptr) ? nl : buf_end;
    const char* hash = static_cast<const char*>(
        std::memchr(p, '#', static_cast<std::size_t>(line_end - p)));
    if (hash != nullptr) line_end = hash;  // comment runs to end of line

    const auto next_token = [&]() {
      while (p < line_end && is_sep(*p)) ++p;
      const char* tok = p;
      while (p < line_end && !is_sep(*p)) ++p;
      return std::pair<const char*, const char*>(tok, p);
    };

    const auto [first, first_end] = next_token();
    if (first == first_end) {  // blank (or comment-only) line
      p = next_line;
      continue;
    }
    const std::size_t first_len = static_cast<std::size_t>(first_end - first);

    if (first_len == 8 && std::memcmp(first, "relation", 8) == 0) {
      const auto [name, name_end] = next_token();
      const auto [ar, ar_end] = next_token();
      int arity = -1;
      const auto parsed = std::from_chars(ar, ar_end, arity);
      if (name == name_end || ar == ar_end || parsed.ec != std::errc() ||
          parsed.ptr != ar_end || arity < 0) {
        return Status::ParseError("line " + std::to_string(line_number) +
                                  ": expected 'relation NAME ARITY'");
      }
      scratch.assign(name, static_cast<std::size_t>(name_end - name));
      if (db->AddRelation(scratch, arity) == nullptr) {
        return Status::ParseError("line " + std::to_string(line_number) +
                                  ": relation '" + scratch +
                                  "' re-declared with different arity");
      }
      p = next_line;
      continue;
    }

    std::size_t slot;
    if (last_slot != static_cast<std::size_t>(-1) &&
        last_name.size() == first_len &&
        std::memcmp(last_name.data(), first, first_len) == 0) {
      slot = last_slot;
    } else {
      scratch.assign(first, first_len);
      Relation* rel = db->FindMutable(scratch);
      if (rel == nullptr) {
        return Status::ParseError("line " + std::to_string(line_number) +
                                  ": tuple for undeclared relation '" +
                                  scratch + "'");
      }
      const auto [it, inserted] = pending_index.emplace(rel, pending.size());
      if (inserted) {
        pending.emplace_back();
        pending.back().rel = rel;
      }
      slot = it->second;
      last_name.assign(first, first_len);
      last_slot = slot;
    }
    PendingRows& rows = pending[slot];

    std::size_t width = 0;
    for (;;) {
      const auto [tok, tok_end] = next_token();
      if (tok == tok_end) break;
      CQB_RETURN_NOT_OK(
          UnescapeTokenInto(tok, tok_end, line_number, &scratch));
      rows.flat.push_back(db->value_pool()->Intern(scratch));
      ++width;
    }
    if (static_cast<int>(width) != rows.rel->arity()) {
      return Status::ParseError(
          "line " + std::to_string(line_number) + ": tuple of arity " +
          std::to_string(width) + " for relation '" + rows.rel->name() +
          "' of arity " + std::to_string(rows.rel->arity()));
    }
    ++rows.rows;
    p = next_line;
  }
  for (PendingRows& rows : pending) {
    rows.rel->InsertFlat(rows.flat, rows.rows);
  }
  return Status::OK();
}

Status ReadDatabaseTextFromString(const std::string& text, Database* db) {
  std::istringstream in(text);
  return ReadDatabaseText(in, db);
}

Status WriteDatabaseText(const Database& db, std::ostream& out) {
  const ValuePool& pool = db.value_pool();
  const Value pool_size = static_cast<Value>(pool.size());
  for (const auto& [name, rel] : db.relations()) {
    CQB_RETURN_NOT_OK(CheckWritableRelationName(name));
    out << "relation " << name << " " << rel.arity() << "\n";
    const ColumnStore& store = rel.store();
    for (std::size_t row = 0; row < store.size(); ++row) {
      if (!store.IsLive(row)) continue;
      out << name;
      for (int c = 0; c < rel.arity(); ++c) {
        const Value v = store.ValueAt(row, c);
        if (v < 0 || v >= pool_size) {
          // Spelling() would render the "?<id>" fallback, which reads back
          // as a *different* value -- the silent round-trip corruption this
          // error replaces.
          return Status::FailedPrecondition(
              "relation '" + name + "' holds value id " + std::to_string(v) +
              " that was never interned in the database's pool");
        }
        out << " " << EscapeToken(pool.Spelling(v));
      }
      out << "\n";
    }
  }
  return Status::OK();
}

Result<std::string> WriteDatabaseTextToString(const Database& db) {
  std::ostringstream out;
  CQB_RETURN_NOT_OK(WriteDatabaseText(db, out));
  return out.str();
}

}  // namespace cqbounds
