#ifndef CQBOUNDS_UTIL_THREAD_POOL_H_
#define CQBOUNDS_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cqbounds {

/// A small fixed-size worker pool for data-parallel fan-out, in the style of
/// a chess engine's persistent search-thread set: workers are spawned once
/// and sleep on a condition variable between batches, so dispatching a batch
/// costs a notify, not N thread creations. The parallel generic-join
/// executor (relation/evaluate.h) uses it to partition the depth-0 leapfrog
/// intersection range across workers; bench E13 measures the scaling.
///
/// Scheduling is dynamic: tasks are claimed one at a time from a shared
/// counter, so uneven task costs (e.g. skewed join subtrees) balance
/// automatically. The calling thread participates in every batch, so a pool
/// with W workers runs batches at parallelism W+1 -- and a pool constructed
/// with 0 workers degrades to plain inline execution, which keeps
/// "ThreadPool* == nullptr or empty" a valid serial configuration.
///
/// Thread-safety contract: ParallelFor may be called from any thread;
/// concurrent calls are serialized (one batch runs at a time). Tasks must
/// not call ParallelFor on their own pool (the batch would self-deadlock on
/// the caller lock only if every worker did so; it is simply unsupported)
/// and must not throw -- the library reports errors through Status, never
/// exceptions.
class ThreadPool {
 public:
  /// Spawns `num_workers` persistent workers (clamped below at 0).
  explicit ThreadPool(int num_workers);

  /// Wakes and joins every worker. Must not race an active ParallelFor.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Runs fn(0), ..., fn(num_tasks - 1), each exactly once, across the
  /// workers and the calling thread; returns once every call has finished.
  /// Task order across threads is unspecified; fn must be safe to invoke
  /// concurrently with itself on distinct indices.
  void ParallelFor(std::size_t num_tasks,
                   const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();
  /// Claims and runs tasks of the current batch until none remain. Expects
  /// `lock` held on mu_; returns with it held.
  void DrainBatch(std::unique_lock<std::mutex>& lock);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: a batch is available
  std::condition_variable done_cv_;  // caller: the batch completed
  const std::function<void(std::size_t)>* fn_ = nullptr;  // null = no batch
  std::size_t total_ = 0;      // tasks in the current batch
  std::size_t next_ = 0;       // next unclaimed task index
  std::size_t in_flight_ = 0;  // claimed but unfinished tasks
  bool stop_ = false;

  std::mutex caller_mu_;  // serializes concurrent ParallelFor callers
};

}  // namespace cqbounds

#endif  // CQBOUNDS_UTIL_THREAD_POOL_H_
