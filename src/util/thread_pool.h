#ifndef CQBOUNDS_UTIL_THREAD_POOL_H_
#define CQBOUNDS_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace cqbounds {

/// A small fixed-size worker pool for data-parallel fan-out, in the style of
/// a chess engine's persistent search-thread set: workers are spawned once
/// and sleep on a condition variable between batches, so dispatching a batch
/// costs a notify, not N thread creations. The parallel generic-join
/// executor (relation/evaluate.h) uses it to partition the depth-0 leapfrog
/// intersection range across workers; bench E13 measures the scaling.
///
/// Scheduling is dynamic: tasks are claimed one at a time from a shared
/// counter, so uneven task costs (e.g. skewed join subtrees) balance
/// automatically. The calling thread participates in every batch, so a pool
/// with W workers runs batches at parallelism W+1 -- and a pool constructed
/// with 0 workers degrades to plain inline execution, which keeps
/// "ThreadPool* == nullptr or empty" a valid serial configuration.
///
/// Thread-safety contract -- machine-checked under Clang's thread-safety
/// analysis (-DCQBOUNDS_THREAD_SAFETY=ON; see util/thread_annotations.h and
/// docs/STATIC_ANALYSIS.md): every batch field is CQB_GUARDED_BY(mu_), and
/// `caller_mu_` serializes concurrent ParallelFor callers (one batch runs at
/// a time) while guarding no data itself. Tasks must not call ParallelFor on
/// their own pool (the batch would self-deadlock on the caller lock only if
/// every worker did so; it is simply unsupported) and must not throw -- the
/// library reports errors through Status, never exceptions.
class ThreadPool {
 public:
  /// Spawns `num_workers` persistent workers (clamped below at 0).
  explicit ThreadPool(int num_workers);

  /// Wakes and joins every worker. Must not race an active ParallelFor.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Runs fn(0), ..., fn(num_tasks - 1), each exactly once, across the
  /// workers and the calling thread; returns once every call has finished.
  /// Task order across threads is unspecified; fn must be safe to invoke
  /// concurrently with itself on distinct indices.
  void ParallelFor(std::size_t num_tasks,
                   const std::function<void(std::size_t)>& fn)
      CQB_EXCLUDES(caller_mu_, mu_);

 private:
  void WorkerLoop() CQB_EXCLUDES(mu_);
  /// Claims and runs tasks of the current batch until none remain. Expects
  /// mu_ held; drops it around each task invocation and returns with it
  /// held.
  void DrainBatch() CQB_REQUIRES(mu_);

  std::vector<std::thread> workers_;

  Mutex mu_;
  CondVar work_cv_;  // workers: a batch is available
  CondVar done_cv_;  // caller: the batch completed
  /// Null when no batch is active.
  const std::function<void(std::size_t)>* fn_ CQB_GUARDED_BY(mu_) = nullptr;
  std::size_t total_ CQB_GUARDED_BY(mu_) = 0;      // tasks in current batch
  std::size_t next_ CQB_GUARDED_BY(mu_) = 0;       // next unclaimed index
  std::size_t in_flight_ CQB_GUARDED_BY(mu_) = 0;  // claimed, unfinished
  bool stop_ CQB_GUARDED_BY(mu_) = false;

  /// Serializes concurrent ParallelFor callers. Guards no member (the batch
  /// state belongs to mu_); always acquired before mu_.
  Mutex caller_mu_ CQB_ACQUIRED_BEFORE(mu_);
};

}  // namespace cqbounds

#endif  // CQBOUNDS_UTIL_THREAD_POOL_H_
