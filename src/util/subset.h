#ifndef CQBOUNDS_UTIL_SUBSET_H_
#define CQBOUNDS_UTIL_SUBSET_H_

#include <cstdint>
#include <vector>

namespace cqbounds {

/// Helpers for subsets of a ground set {0, ..., n-1} encoded as 64-bit masks.
///
/// The entropy machinery (Section 6 of the paper) indexes entropy vectors by
/// variable subsets, and the exact treewidth DP iterates over vertex subsets;
/// both use these utilities. Ground sets are limited to 64 elements, far
/// beyond what the 2^n algorithms can process anyway.
using SubsetMask = std::uint64_t;

/// Number of elements in the subset.
inline int PopCount(SubsetMask mask) { return __builtin_popcountll(mask); }

/// True if `sub` is a subset of `super`.
inline bool IsSubsetOf(SubsetMask sub, SubsetMask super) {
  return (sub & ~super) == 0;
}

/// True if element `i` is in the subset.
inline bool Contains(SubsetMask mask, int i) {
  return (mask >> i) & 1ull;
}

/// Mask with the single element `i`.
inline SubsetMask Singleton(int i) { return 1ull << i; }

/// The full set {0, ..., n-1}. Requires 0 <= n <= 64.
inline SubsetMask FullSet(int n) {
  return n >= 64 ? ~0ull : (1ull << n) - 1;
}

/// The elements of `mask` in increasing order.
std::vector<int> Elements(SubsetMask mask);

/// Builds a mask from a list of elements.
SubsetMask MaskOf(const std::vector<int>& elements);

/// Enumerates all subsets of `mask` (including empty and `mask` itself) by
/// invoking `fn(sub)` on each. The standard sub = (sub - 1) & mask walk.
template <typename Fn>
void ForEachSubset(SubsetMask mask, Fn&& fn) {
  SubsetMask sub = mask;
  while (true) {
    fn(sub);
    if (sub == 0) break;
    sub = (sub - 1) & mask;
  }
}

}  // namespace cqbounds

#endif  // CQBOUNDS_UTIL_SUBSET_H_
