#ifndef CQBOUNDS_UTIL_RNG_H_
#define CQBOUNDS_UTIL_RNG_H_

#include <cstdint>

namespace cqbounds {

/// Deterministic SplitMix64 PRNG.
///
/// Benchmarks and property tests must be reproducible run-to-run, so the
/// library carries its own tiny generator instead of depending on the
/// platform's std::default_random_engine (whose algorithm is unspecified).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t NextBelow(std::uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    NextBelow(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli draw with probability numer/denom.
  bool NextBool(std::uint64_t numer, std::uint64_t denom) {
    return NextBelow(denom) < numer;
  }

 private:
  std::uint64_t state_;
};

}  // namespace cqbounds

#endif  // CQBOUNDS_UTIL_RNG_H_
