#ifndef CQBOUNDS_UTIL_MUTEX_H_
#define CQBOUNDS_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace cqbounds {

/// std::mutex behind the Clang thread-safety capability attributes
/// (util/thread_annotations.h). The analysis can only track lock state
/// through lock functions that carry acquire/release attributes, which
/// libstdc++'s std::mutex / std::lock_guard lack -- so every mutex that
/// guards annotated state in this codebase is a cqbounds::Mutex, locked via
/// MutexLock (scoped) or Lock()/Unlock() (for the hand-over-hand patterns a
/// scope cannot express). Zero overhead: Mutex is exactly a std::mutex plus
/// attributes the compiler erases.
class CQB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CQB_ACQUIRE() { mu_.lock(); }
  void Unlock() CQB_RELEASE() { mu_.unlock(); }
  bool TryLock() CQB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped std::mutex, for interop with std waiting primitives
  /// (CondVar::Wait adopts it). Invisible to the analysis -- never lock it
  /// directly outside this header.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII scoped lock over Mutex, attribute-equivalent to std::lock_guard:
/// acquires in the constructor, releases in the destructor, and tells the
/// analysis so.
class CQB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CQB_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() CQB_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. Wait requires the mutex held (the
/// analysis checks callers); the internal release/reacquire across the block
/// is invisible to the analysis, matching the semantics callers observe --
/// the capability is held before and after, and guarded state must be
/// re-checked in a loop after every wakeup:
///
///   while (!predicate_over_guarded_state) cv.Wait(mu);
///
/// Predicates stay at the call site (not a lambda parameter) on purpose:
/// the analysis does not propagate REQUIRES into lambda bodies, so a
/// wait-with-predicate overload would force guarded reads into unanalyzed
/// code.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and blocks until notified, reacquiring `mu`
  /// before returning. Spurious wakeups happen; always re-check the
  /// predicate.
  void Wait(Mutex& mu) CQB_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller still holds mu; do not unlock on scope exit
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace cqbounds

#endif  // CQBOUNDS_UTIL_MUTEX_H_
