#ifndef CQBOUNDS_UTIL_RATIONAL_H_
#define CQBOUNDS_UTIL_RATIONAL_H_

#include <cstdint>
#include <iosfwd>
#include <string>

#include "util/bigint.h"

namespace cqbounds {

/// Exact rational number (BigInt numerator / positive BigInt denominator,
/// always kept in lowest terms).
///
/// The paper's bounds are rational-valued: color numbers (Def 3.2),
/// fractional edge cover numbers (Def 3.5), and the entropy LP value s(Q)
/// (Prop 6.9) are all solutions of rational linear programs. Carrying them
/// exactly lets tests assert e.g. `C(triangle) == 3/2` rather than
/// `|c - 1.5| < eps`.
class Rational {
 public:
  /// Constructs zero.
  Rational() : num_(0), den_(1) {}
  /// Constructs an integer value.
  Rational(std::int64_t value) : num_(value), den_(1) {}  // NOLINT
  Rational(BigInt value) : num_(std::move(value)), den_(1) {}  // NOLINT
  /// Constructs num/den, normalizing sign and reducing. Aborts if den == 0.
  Rational(BigInt num, BigInt den);
  Rational(std::int64_t num, std::int64_t den)
      : Rational(BigInt(num), BigInt(den)) {}

  /// Parses "a/b" or "a" in base 10. Returns false on malformed input.
  static bool Parse(const std::string& text, Rational* out);

  const BigInt& numerator() const { return num_; }
  const BigInt& denominator() const { return den_; }

  bool IsZero() const { return num_.IsZero(); }
  bool IsInteger() const { return den_ == BigInt(1); }
  int Sign() const { return num_.Sign(); }

  double ToDouble() const;
  /// "a/b", or just "a" when the denominator is 1.
  std::string ToString() const;

  Rational operator-() const;
  Rational operator+(const Rational& rhs) const;
  Rational operator-(const Rational& rhs) const;
  Rational operator*(const Rational& rhs) const;
  /// Aborts on division by zero.
  Rational operator/(const Rational& rhs) const;

  Rational& operator+=(const Rational& rhs) { return *this = *this + rhs; }
  Rational& operator-=(const Rational& rhs) { return *this = *this - rhs; }
  Rational& operator*=(const Rational& rhs) { return *this = *this * rhs; }
  Rational& operator/=(const Rational& rhs) { return *this = *this / rhs; }

  bool operator==(const Rational& rhs) const {
    return num_ == rhs.num_ && den_ == rhs.den_;
  }
  bool operator!=(const Rational& rhs) const { return !(*this == rhs); }
  bool operator<(const Rational& rhs) const;
  bool operator>(const Rational& rhs) const { return rhs < *this; }
  bool operator<=(const Rational& rhs) const { return !(rhs < *this); }
  bool operator>=(const Rational& rhs) const { return !(*this < rhs); }

  /// Largest integer <= value.
  BigInt Floor() const;
  /// Smallest integer >= value.
  BigInt Ceil() const;

 private:
  void Normalize();

  BigInt num_;
  BigInt den_;  // invariant: den_ > 0, gcd(|num_|, den_) == 1
};

std::ostream& operator<<(std::ostream& os, const Rational& v);

}  // namespace cqbounds

#endif  // CQBOUNDS_UTIL_RATIONAL_H_
