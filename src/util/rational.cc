#include "util/rational.h"

#include <ostream>
#include <utility>

#include "util/status.h"

namespace cqbounds {

Rational::Rational(BigInt num, BigInt den)
    : num_(std::move(num)), den_(std::move(den)) {
  CQB_CHECK(!den_.IsZero());
  Normalize();
}

void Rational::Normalize() {
  if (den_.IsNegative()) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_.IsZero()) {
    den_ = BigInt(1);
    return;
  }
  BigInt g = BigInt::Gcd(num_, den_);
  if (g != BigInt(1)) {
    num_ /= g;
    den_ /= g;
  }
}

bool Rational::Parse(const std::string& text, Rational* out) {
  std::size_t slash = text.find('/');
  BigInt num, den(1);
  if (slash == std::string::npos) {
    if (!BigInt::Parse(text, &num)) return false;
  } else {
    if (!BigInt::Parse(text.substr(0, slash), &num)) return false;
    if (!BigInt::Parse(text.substr(slash + 1), &den)) return false;
    if (den.IsZero()) return false;
  }
  *out = Rational(std::move(num), std::move(den));
  return true;
}

double Rational::ToDouble() const {
  return num_.ToDouble() / den_.ToDouble();
}

std::string Rational::ToString() const {
  if (IsInteger()) return num_.ToString();
  return num_.ToString() + "/" + den_.ToString();
}

Rational Rational::operator-() const {
  Rational r = *this;
  r.num_ = -r.num_;
  return r;
}

Rational Rational::operator+(const Rational& rhs) const {
  return Rational(num_ * rhs.den_ + rhs.num_ * den_, den_ * rhs.den_);
}

Rational Rational::operator-(const Rational& rhs) const {
  return Rational(num_ * rhs.den_ - rhs.num_ * den_, den_ * rhs.den_);
}

Rational Rational::operator*(const Rational& rhs) const {
  return Rational(num_ * rhs.num_, den_ * rhs.den_);
}

Rational Rational::operator/(const Rational& rhs) const {
  CQB_CHECK(!rhs.IsZero());
  return Rational(num_ * rhs.den_, den_ * rhs.num_);
}

bool Rational::operator<(const Rational& rhs) const {
  return num_ * rhs.den_ < rhs.num_ * den_;
}

BigInt Rational::Floor() const {
  BigInt q, r;
  BigInt::DivMod(num_, den_, &q, &r);
  if (r.IsNegative()) q -= BigInt(1);
  return q;
}

BigInt Rational::Ceil() const {
  BigInt q, r;
  BigInt::DivMod(num_, den_, &q, &r);
  if (r.Sign() > 0) q += BigInt(1);
  return q;
}

std::ostream& operator<<(std::ostream& os, const Rational& v) {
  return os << v.ToString();
}

}  // namespace cqbounds
