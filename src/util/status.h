#ifndef CQBOUNDS_UTIL_STATUS_H_
#define CQBOUNDS_UTIL_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <variant>

namespace cqbounds {

/// Error categories used across the library (Arrow/RocksDB-style status
/// codes). `kOk` is reserved for the success singleton.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kParseError,
  kInfeasible,
  kUnbounded,
};

/// Returns a short human-readable name for `code` ("OK", "InvalidArgument"...).
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kUnimplemented: return "Unimplemented";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kParseError: return "ParseError";
    case StatusCode::kInfeasible: return "Infeasible";
    case StatusCode::kUnbounded: return "Unbounded";
  }
  return "Unknown";
}

/// Lightweight success/error value. The library does not throw exceptions on
/// expected failure paths; functions that can fail return `Status` or
/// `Result<T>`.
///
/// [[nodiscard]]: silently dropping a returned Status is how partial writes
/// and swallowed parse errors ship, so the compiler flags every ignored
/// return (and the `discarded-status` rule of scripts/lint/cqb_lint.py
/// backstops builds that run without warnings). An intentionally discarded
/// status must say so with an explicit `(void)` cast and a comment.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status Unbounded(std::string msg) {
    return Status(StatusCode::kUnbounded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "Code: message" (or "OK").
  std::string ToString() const {
    if (ok()) return "OK";
    std::string s = StatusCodeName(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type `T` or an error `Status`. Modeled after
/// `arrow::Result`: checked access via `ok()`, value access via
/// `ValueOrDie()` / `operator*` (aborts if holding an error).
/// [[nodiscard]] for the same reason as Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value: allows `return value;` in Result-returning funcs.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status; aborts if the status is OK (an OK Result
  /// must carry a value).
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    if (std::get<Status>(payload_).ok()) {
      std::cerr << "Result constructed from OK status without a value\n";
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(payload_);
  }

  /// Returns the value; aborts with a diagnostic if this holds an error.
  const T& ValueOrDie() const {
    if (!ok()) {
      std::cerr << "Result::ValueOrDie on error: " << status().ToString()
                << "\n";
      std::abort();
    }
    return std::get<T>(payload_);
  }
  T& ValueOrDie() {
    if (!ok()) {
      std::cerr << "Result::ValueOrDie on error: " << status().ToString()
                << "\n";
      std::abort();
    }
    return std::get<T>(payload_);
  }

  const T& operator*() const { return ValueOrDie(); }
  T& operator*() { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Moves the value out; aborts if this holds an error.
  T MoveValueOrDie() {
    if (!ok()) {
      std::cerr << "Result::MoveValueOrDie on error: " << status().ToString()
                << "\n";
      std::abort();
    }
    return std::move(std::get<T>(payload_));
  }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates a non-OK `Status` from an expression to the caller.
#define CQB_RETURN_NOT_OK(expr)                   \
  do {                                            \
    ::cqbounds::Status _st = (expr);              \
    if (!_st.ok()) return _st;                    \
  } while (0)

/// Evaluates a `Result<T>` expression, propagating errors; on success binds
/// the moved value to `lhs`.
#define CQB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = tmp.MoveValueOrDie();

#define CQB_ASSIGN_OR_RETURN(lhs, expr) \
  CQB_ASSIGN_OR_RETURN_IMPL(CQB_CONCAT_(_cqb_res_, __LINE__), lhs, expr)

#define CQB_CONCAT_(a, b) CQB_CONCAT_IMPL_(a, b)
#define CQB_CONCAT_IMPL_(a, b) a##b

/// Aborts the process with a message if `cond` is false. Used for internal
/// invariants that indicate programming errors (not recoverable conditions).
#define CQB_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::cerr << "CQB_CHECK failed at " << __FILE__ << ":" << __LINE__ \
                << ": " #cond "\n";                                       \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

}  // namespace cqbounds

#endif  // CQBOUNDS_UTIL_STATUS_H_
