#include "util/thread_pool.h"

namespace cqbounds {

ThreadPool::ThreadPool(int num_workers) {
  if (num_workers < 0) num_workers = 0;
  workers_.reserve(static_cast<std::size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::DrainBatch(std::unique_lock<std::mutex>& lock) {
  // Claim-one-run-one: the shared counter is the scheduler, so uneven task
  // costs balance without any static partitioning. The claimed call runs
  // outside the lock.
  while (fn_ != nullptr && next_ < total_) {
    const std::size_t index = next_++;
    ++in_flight_;
    const std::function<void(std::size_t)>* fn = fn_;
    lock.unlock();
    (*fn)(index);
    lock.lock();
    --in_flight_;
  }
  if (next_ >= total_ && in_flight_ == 0) done_cv_.notify_all();
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock,
                  [this] { return stop_ || (fn_ != nullptr && next_ < total_); });
    if (stop_) return;
    DrainBatch(lock);
  }
}

void ThreadPool::ParallelFor(std::size_t num_tasks,
                             const std::function<void(std::size_t)>& fn) {
  if (num_tasks == 0) return;
  if (workers_.empty()) {
    // No workers: plain inline execution, no synchronization at all.
    for (std::size_t i = 0; i < num_tasks; ++i) fn(i);
    return;
  }
  // One batch at a time; a second concurrent caller queues here.
  std::lock_guard<std::mutex> caller_lock(caller_mu_);
  std::unique_lock<std::mutex> lock(mu_);
  fn_ = &fn;
  total_ = num_tasks;
  next_ = 0;
  in_flight_ = 0;
  work_cv_.notify_all();
  // The caller is a full participant: it drains alongside the workers, so
  // even a pool whose workers are briefly busy waking up makes progress.
  DrainBatch(lock);
  done_cv_.wait(lock, [this] { return next_ >= total_ && in_flight_ == 0; });
  fn_ = nullptr;
  total_ = 0;
}

}  // namespace cqbounds
