#include "util/thread_pool.h"

namespace cqbounds {

ThreadPool::ThreadPool(int num_workers) {
  if (num_workers < 0) num_workers = 0;
  workers_.reserve(static_cast<std::size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::DrainBatch() {
  // Claim-one-run-one: the shared counter is the scheduler, so uneven task
  // costs balance without any static partitioning. The claimed call runs
  // outside the lock (hand-over-hand, which is why this uses explicit
  // Lock/Unlock instead of a scope the analysis could check for us -- the
  // REQUIRES(mu_) contract still makes Clang verify the re-acquisition).
  while (fn_ != nullptr && next_ < total_) {
    const std::size_t index = next_++;
    ++in_flight_;
    const std::function<void(std::size_t)>* fn = fn_;
    mu_.Unlock();
    (*fn)(index);
    mu_.Lock();
    --in_flight_;
  }
  if (next_ >= total_ && in_flight_ == 0) done_cv_.NotifyAll();
}

void ThreadPool::WorkerLoop() {
  MutexLock lock(mu_);
  while (true) {
    while (!stop_ && !(fn_ != nullptr && next_ < total_)) {
      work_cv_.Wait(mu_);
    }
    if (stop_) return;
    DrainBatch();
  }
}

void ThreadPool::ParallelFor(std::size_t num_tasks,
                             const std::function<void(std::size_t)>& fn) {
  if (num_tasks == 0) return;
  if (workers_.empty()) {
    // No workers: plain inline execution, no synchronization at all.
    for (std::size_t i = 0; i < num_tasks; ++i) fn(i);
    return;
  }
  // One batch at a time; a second concurrent caller queues here.
  MutexLock caller_lock(caller_mu_);
  MutexLock lock(mu_);
  fn_ = &fn;
  total_ = num_tasks;
  next_ = 0;
  in_flight_ = 0;
  work_cv_.NotifyAll();
  // The caller is a full participant: it drains alongside the workers, so
  // even a pool whose workers are briefly busy waking up makes progress.
  DrainBatch();
  while (!(next_ >= total_ && in_flight_ == 0)) done_cv_.Wait(mu_);
  fn_ = nullptr;
  total_ = 0;
}

}  // namespace cqbounds
