#include "util/bigint.h"

#include <cstdlib>
#include <iostream>

#include "util/status.h"

namespace cqbounds {

namespace {
constexpr std::uint64_t kBase = 1ull << 32;
}  // namespace

BigInt::BigInt(std::int64_t value) {
  if (value == 0) return;
  negative_ = value < 0;
  // Careful with INT64_MIN: negate in unsigned domain.
  std::uint64_t mag =
      negative_ ? ~static_cast<std::uint64_t>(value) + 1
                : static_cast<std::uint64_t>(value);
  limbs_.push_back(static_cast<std::uint32_t>(mag & 0xffffffffu));
  if (mag >> 32) limbs_.push_back(static_cast<std::uint32_t>(mag >> 32));
}

void BigInt::Trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

bool BigInt::Parse(const std::string& text, BigInt* out) {
  if (text.empty()) return false;
  std::size_t i = 0;
  bool neg = false;
  if (text[0] == '-' || text[0] == '+') {
    neg = text[0] == '-';
    i = 1;
  }
  if (i >= text.size()) return false;
  BigInt value;
  const BigInt ten(10);
  for (; i < text.size(); ++i) {
    if (text[i] < '0' || text[i] > '9') return false;
    value = value * ten + BigInt(text[i] - '0');
  }
  if (neg && !value.IsZero()) value.negative_ = true;
  *out = std::move(value);
  return true;
}

bool BigInt::FitsInt64(std::int64_t* out) const {
  if (limbs_.size() > 2) return false;
  std::uint64_t mag = 0;
  if (!limbs_.empty()) mag = limbs_[0];
  if (limbs_.size() == 2) mag |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  if (negative_) {
    if (mag > static_cast<std::uint64_t>(1) << 63) return false;
    *out = static_cast<std::int64_t>(~mag + 1);
  } else {
    if (mag > static_cast<std::uint64_t>(INT64_MAX)) return false;
    *out = static_cast<std::int64_t>(mag);
  }
  return true;
}

std::int64_t BigInt::ToInt64() const {
  std::int64_t v = 0;
  if (!FitsInt64(&v)) {
    std::cerr << "BigInt::ToInt64 overflow: " << ToString() << "\n";
    std::abort();
  }
  return v;
}

double BigInt::ToDouble() const {
  double result = 0.0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    result = result * static_cast<double>(kBase) + limbs_[i];
  }
  return negative_ ? -result : result;
}

std::string BigInt::ToString() const {
  if (IsZero()) return "0";
  // Repeatedly divide the magnitude by 10^9 to extract decimal chunks.
  std::vector<std::uint32_t> mag = limbs_;
  std::string digits;
  constexpr std::uint32_t kChunk = 1000000000u;
  while (!mag.empty()) {
    std::uint64_t rem = 0;
    for (std::size_t i = mag.size(); i-- > 0;) {
      std::uint64_t cur = (rem << 32) | mag[i];
      mag[i] = static_cast<std::uint32_t>(cur / kChunk);
      rem = cur % kChunk;
    }
    while (!mag.empty() && mag.back() == 0) mag.pop_back();
    for (int d = 0; d < 9; ++d) {
      digits.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  return std::string(digits.rbegin(), digits.rend());
}

BigInt BigInt::operator-() const {
  BigInt result = *this;
  if (!result.IsZero()) result.negative_ = !result.negative_;
  return result;
}

BigInt BigInt::Abs() const {
  BigInt result = *this;
  result.negative_ = false;
  return result;
}

int BigInt::CompareMagnitude(const std::vector<std::uint32_t>& a,
                             const std::vector<std::uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::vector<std::uint32_t> BigInt::AddMagnitude(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  const std::vector<std::uint32_t>& longer = a.size() >= b.size() ? a : b;
  const std::vector<std::uint32_t>& shorter = a.size() >= b.size() ? b : a;
  std::vector<std::uint32_t> out;
  out.reserve(longer.size() + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < longer.size(); ++i) {
    std::uint64_t sum = carry + longer[i];
    if (i < shorter.size()) sum += shorter[i];
    out.push_back(static_cast<std::uint32_t>(sum & 0xffffffffu));
    carry = sum >> 32;
  }
  if (carry) out.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

std::vector<std::uint32_t> BigInt::SubMagnitude(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> out;
  out.reserve(a.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow -
                        (i < b.size() ? static_cast<std::int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<std::uint32_t>(diff));
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::vector<std::uint32_t> BigInt::MulMagnitude(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<std::uint32_t> out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      std::uint64_t cur = static_cast<std::uint64_t>(a[i]) * b[j] +
                          out[i + j] + carry;
      out[i + j] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    std::size_t k = i + b.size();
    while (carry) {
      std::uint64_t cur = out[k] + carry;
      out[k] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

void BigInt::DivModMagnitude(const std::vector<std::uint32_t>& a,
                             const std::vector<std::uint32_t>& b,
                             std::vector<std::uint32_t>* quotient,
                             std::vector<std::uint32_t>* remainder) {
  CQB_CHECK(!b.empty());
  quotient->clear();
  remainder->clear();
  if (CompareMagnitude(a, b) < 0) {
    *remainder = a;
    return;
  }
  if (b.size() == 1) {
    // Short division by a single limb.
    quotient->assign(a.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = a.size(); i-- > 0;) {
      std::uint64_t cur = (rem << 32) | a[i];
      (*quotient)[i] = static_cast<std::uint32_t>(cur / b[0]);
      rem = cur % b[0];
    }
    while (!quotient->empty() && quotient->back() == 0) quotient->pop_back();
    if (rem) remainder->push_back(static_cast<std::uint32_t>(rem));
    return;
  }
  // Knuth algorithm D. Normalize so the top limb of the divisor has its high
  // bit set.
  int shift = 0;
  std::uint32_t top = b.back();
  while (!(top & 0x80000000u)) {
    top <<= 1;
    ++shift;
  }
  auto shl = [shift](const std::vector<std::uint32_t>& v) {
    if (shift == 0) return v;
    std::vector<std::uint32_t> out(v.size() + 1, 0);
    for (std::size_t i = 0; i < v.size(); ++i) {
      out[i] |= v[i] << shift;
      out[i + 1] |= static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(v[i]) >> (32 - shift));
    }
    while (!out.empty() && out.back() == 0) out.pop_back();
    return out;
  };
  std::vector<std::uint32_t> u = shl(a);
  std::vector<std::uint32_t> v = shl(b);
  const std::size_t n = v.size();
  const std::size_t m = u.size() - n;
  u.push_back(0);  // u has m + n + 1 limbs
  quotient->assign(m + 1, 0);
  const std::uint64_t vtop = v[n - 1];
  const std::uint64_t vsecond = v[n - 2];
  for (std::size_t j = m + 1; j-- > 0;) {
    // Estimate q_hat from the top two limbs of the current window.
    std::uint64_t numerator =
        (static_cast<std::uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    std::uint64_t q_hat = numerator / vtop;
    std::uint64_t r_hat = numerator % vtop;
    while (q_hat >= kBase ||
           q_hat * vsecond > ((r_hat << 32) | u[j + n - 2])) {
      --q_hat;
      r_hat += vtop;
      if (r_hat >= kBase) break;
    }
    // Multiply-subtract q_hat * v from u[j .. j+n].
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t product = q_hat * v[i] + carry;
      carry = product >> 32;
      std::int64_t diff = static_cast<std::int64_t>(u[i + j]) - borrow -
                          static_cast<std::int64_t>(product & 0xffffffffu);
      if (diff < 0) {
        diff += static_cast<std::int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<std::uint32_t>(diff);
    }
    std::int64_t diff = static_cast<std::int64_t>(u[j + n]) - borrow -
                        static_cast<std::int64_t>(carry);
    bool went_negative = diff < 0;
    if (went_negative) diff += static_cast<std::int64_t>(kBase);
    u[j + n] = static_cast<std::uint32_t>(diff);
    if (went_negative) {
      // q_hat was one too large: add v back once.
      --q_hat;
      std::uint64_t add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t sum = static_cast<std::uint64_t>(u[i + j]) + v[i] +
                            add_carry;
        u[i + j] = static_cast<std::uint32_t>(sum & 0xffffffffu);
        add_carry = sum >> 32;
      }
      u[j + n] = static_cast<std::uint32_t>(u[j + n] + add_carry);
    }
    (*quotient)[j] = static_cast<std::uint32_t>(q_hat);
  }
  while (!quotient->empty() && quotient->back() == 0) quotient->pop_back();
  // Denormalize the remainder.
  u.resize(n);
  if (shift != 0) {
    for (std::size_t i = 0; i < n; ++i) {
      u[i] >>= shift;
      if (i + 1 < n) {
        u[i] |= static_cast<std::uint32_t>(
            static_cast<std::uint64_t>(u[i + 1]) << (32 - shift));
      }
    }
  }
  while (!u.empty() && u.back() == 0) u.pop_back();
  *remainder = std::move(u);
}

BigInt BigInt::operator+(const BigInt& rhs) const {
  BigInt result;
  if (negative_ == rhs.negative_) {
    result.limbs_ = AddMagnitude(limbs_, rhs.limbs_);
    result.negative_ = negative_;
  } else {
    int cmp = CompareMagnitude(limbs_, rhs.limbs_);
    if (cmp == 0) return BigInt();
    if (cmp > 0) {
      result.limbs_ = SubMagnitude(limbs_, rhs.limbs_);
      result.negative_ = negative_;
    } else {
      result.limbs_ = SubMagnitude(rhs.limbs_, limbs_);
      result.negative_ = rhs.negative_;
    }
  }
  result.Trim();
  return result;
}

BigInt BigInt::operator-(const BigInt& rhs) const { return *this + (-rhs); }

BigInt BigInt::operator*(const BigInt& rhs) const {
  BigInt result;
  result.limbs_ = MulMagnitude(limbs_, rhs.limbs_);
  result.negative_ = !result.limbs_.empty() && negative_ != rhs.negative_;
  return result;
}

void BigInt::DivMod(const BigInt& a, const BigInt& b, BigInt* quotient,
                    BigInt* remainder) {
  CQB_CHECK(!b.IsZero());
  BigInt q, r;
  DivModMagnitude(a.limbs_, b.limbs_, &q.limbs_, &r.limbs_);
  q.negative_ = !q.limbs_.empty() && a.negative_ != b.negative_;
  r.negative_ = !r.limbs_.empty() && a.negative_;
  if (quotient) *quotient = std::move(q);
  if (remainder) *remainder = std::move(r);
}

BigInt BigInt::operator/(const BigInt& rhs) const {
  BigInt q;
  DivMod(*this, rhs, &q, nullptr);
  return q;
}

BigInt BigInt::operator%(const BigInt& rhs) const {
  BigInt r;
  DivMod(*this, rhs, nullptr, &r);
  return r;
}

bool BigInt::operator==(const BigInt& rhs) const {
  return negative_ == rhs.negative_ && limbs_ == rhs.limbs_;
}

bool BigInt::operator<(const BigInt& rhs) const {
  if (negative_ != rhs.negative_) return negative_;
  int cmp = CompareMagnitude(limbs_, rhs.limbs_);
  return negative_ ? cmp > 0 : cmp < 0;
}

BigInt BigInt::Gcd(BigInt a, BigInt b) {
  a.negative_ = false;
  b.negative_ = false;
  while (!b.IsZero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::Pow(const BigInt& base, std::int64_t exp) {
  CQB_CHECK(exp >= 0);
  BigInt result(1);
  BigInt acc = base;
  while (exp > 0) {
    if (exp & 1) result *= acc;
    exp >>= 1;
    if (exp > 0) acc *= acc;
  }
  return result;
}

int BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  int bits = static_cast<int>(limbs_.size() - 1) * 32;
  std::uint32_t top = limbs_.back();
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

std::ostream& operator<<(std::ostream& os, const BigInt& v) {
  return os << v.ToString();
}

}  // namespace cqbounds
