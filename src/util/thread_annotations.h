#ifndef CQBOUNDS_UTIL_THREAD_ANNOTATIONS_H_
#define CQBOUNDS_UTIL_THREAD_ANNOTATIONS_H_

/// Macros for Clang's thread-safety analysis (-Wthread-safety), the
/// compile-time checker of the repo's locking discipline: which mutex guards
/// which member, which functions must (or must not) be called with a lock
/// held. Under any other compiler -- and under Clang when the attribute is
/// unavailable -- every macro expands to nothing, so annotated code builds
/// everywhere while a Clang build with -DCQBOUNDS_THREAD_SAFETY=ON turns the
/// documented concurrency contracts of eval_context.h, thread_pool.h and the
/// hybrid executor into hard compile errors. Conventions, the negative-compile
/// repro and the suppression policy live in docs/STATIC_ANALYSIS.md.
///
/// The analysis only understands lock functions that themselves carry
/// acquire/release attributes; libstdc++'s std::mutex / std::lock_guard do
/// not, so annotated code locks through util/mutex.h (cqbounds::Mutex /
/// MutexLock / CondVar) instead of the raw std primitives -- enforced by the
/// `naked-mutex` rule of scripts/lint/cqb_lint.py.

#if defined(__clang__) && (!defined(SWIG))
#define CQB_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define CQB_THREAD_ANNOTATION_(x)  // no-op off Clang
#endif

/// Declares a class to be a capability (a lockable): `class
/// CQB_CAPABILITY("mutex") Mutex { ... };`.
#define CQB_CAPABILITY(x) CQB_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII class that acquires a capability in its constructor and
/// releases it in its destructor (MutexLock).
#define CQB_SCOPED_CAPABILITY CQB_THREAD_ANNOTATION_(scoped_lockable)

/// Declares that a data member is protected by the given capability: reads
/// require the capability held (shared or exclusive), writes require it held
/// exclusively.
#define CQB_GUARDED_BY(x) CQB_THREAD_ANNOTATION_(guarded_by(x))

/// As CQB_GUARDED_BY for pointer members: the pointed-to data (not the
/// pointer itself) is protected by the capability.
#define CQB_PT_GUARDED_BY(x) CQB_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Declares a required lock ordering between capabilities.
#define CQB_ACQUIRED_BEFORE(...) \
  CQB_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define CQB_ACQUIRED_AFTER(...) \
  CQB_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Declares that the caller must hold the given capabilities (exclusively /
/// shared) when calling the function, which neither acquires nor releases
/// them.
#define CQB_REQUIRES(...) \
  CQB_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define CQB_REQUIRES_SHARED(...) \
  CQB_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Declares that the function acquires the given capabilities (held on
/// return, must not be held on entry) / releases them (vice versa).
#define CQB_ACQUIRE(...) \
  CQB_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define CQB_ACQUIRE_SHARED(...) \
  CQB_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define CQB_RELEASE(...) \
  CQB_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define CQB_RELEASE_SHARED(...) \
  CQB_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Declares a function that acquires the capability iff it returns the given
/// boolean value.
#define CQB_TRY_ACQUIRE(...) \
  CQB_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Declares that the caller must NOT hold the given capabilities (the
/// function acquires them itself, or a deadlock would result).
#define CQB_EXCLUDES(...) CQB_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Declares that the function returns a reference to the given capability.
#define CQB_RETURN_CAPABILITY(x) CQB_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must be
/// justified by a comment and is subject to review (docs/STATIC_ANALYSIS.md).
#define CQB_NO_THREAD_SAFETY_ANALYSIS \
  CQB_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // CQBOUNDS_UTIL_THREAD_ANNOTATIONS_H_
