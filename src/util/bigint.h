#ifndef CQBOUNDS_UTIL_BIGINT_H_
#define CQBOUNDS_UTIL_BIGINT_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace cqbounds {

/// Arbitrary-precision signed integer (sign-magnitude, base 2^32 limbs).
///
/// The exact rational simplex solver (`src/lp`) pivots on rationals whose
/// numerators/denominators can grow beyond 64 bits on dense LPs (e.g. the
/// entropy LP of Proposition 6.9 with 2^k variables), so the library carries
/// its own bignum instead of risking silent int64 overflow.
///
/// Value semantics; copy/move are defaulted. Zero is canonically represented
/// by an empty limb vector and `negative_ == false`.
class BigInt {
 public:
  /// Constructs zero.
  BigInt() = default;
  /// Constructs from a machine integer.
  BigInt(std::int64_t value);  // NOLINT(runtime/explicit): intended implicit.

  BigInt(const BigInt&) = default;
  BigInt(BigInt&&) = default;
  BigInt& operator=(const BigInt&) = default;
  BigInt& operator=(BigInt&&) = default;

  /// Parses a base-10 string with optional leading '-'. Returns false on
  /// malformed input (empty, non-digit characters).
  static bool Parse(const std::string& text, BigInt* out);

  bool IsZero() const { return limbs_.empty(); }
  bool IsNegative() const { return negative_; }
  /// -1, 0, or +1.
  int Sign() const { return IsZero() ? 0 : (negative_ ? -1 : 1); }

  /// True if the value fits in int64_t; then `*out` receives it.
  bool FitsInt64(std::int64_t* out) const;
  /// Converts to int64_t, aborting on overflow. Convenience for tests.
  std::int64_t ToInt64() const;
  /// Approximate conversion to double (may lose precision, never aborts).
  double ToDouble() const;

  std::string ToString() const;

  BigInt operator-() const;
  BigInt Abs() const;

  BigInt operator+(const BigInt& rhs) const;
  BigInt operator-(const BigInt& rhs) const;
  BigInt operator*(const BigInt& rhs) const;
  /// Truncated division (C++ semantics: quotient rounds toward zero,
  /// remainder has the sign of the dividend). Aborts on division by zero.
  BigInt operator/(const BigInt& rhs) const;
  BigInt operator%(const BigInt& rhs) const;

  BigInt& operator+=(const BigInt& rhs) { return *this = *this + rhs; }
  BigInt& operator-=(const BigInt& rhs) { return *this = *this - rhs; }
  BigInt& operator*=(const BigInt& rhs) { return *this = *this * rhs; }
  BigInt& operator/=(const BigInt& rhs) { return *this = *this / rhs; }
  BigInt& operator%=(const BigInt& rhs) { return *this = *this % rhs; }

  bool operator==(const BigInt& rhs) const;
  bool operator!=(const BigInt& rhs) const { return !(*this == rhs); }
  bool operator<(const BigInt& rhs) const;
  bool operator>(const BigInt& rhs) const { return rhs < *this; }
  bool operator<=(const BigInt& rhs) const { return !(rhs < *this); }
  bool operator>=(const BigInt& rhs) const { return !(*this < rhs); }

  /// Computes quotient and remainder in one pass (truncated semantics).
  static void DivMod(const BigInt& a, const BigInt& b, BigInt* quotient,
                     BigInt* remainder);

  /// Greatest common divisor (always non-negative).
  static BigInt Gcd(BigInt a, BigInt b);

  /// base^exp for non-negative exp. Aborts if exp < 0.
  static BigInt Pow(const BigInt& base, std::int64_t exp);

  /// Number of significant bits of the magnitude (0 for zero). Useful for
  /// tracking coefficient growth in the simplex.
  int BitLength() const;

 private:
  // Magnitude comparison: -1, 0, +1 for |*this| vs |rhs|.
  static int CompareMagnitude(const std::vector<std::uint32_t>& a,
                              const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> AddMagnitude(
      const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
  // Requires |a| >= |b|.
  static std::vector<std::uint32_t> SubMagnitude(
      const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> MulMagnitude(
      const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
  // Knuth algorithm D on magnitudes.
  static void DivModMagnitude(const std::vector<std::uint32_t>& a,
                              const std::vector<std::uint32_t>& b,
                              std::vector<std::uint32_t>* quotient,
                              std::vector<std::uint32_t>* remainder);
  void Trim();

  bool negative_ = false;
  std::vector<std::uint32_t> limbs_;  // little-endian, base 2^32
};

std::ostream& operator<<(std::ostream& os, const BigInt& v);

}  // namespace cqbounds

#endif  // CQBOUNDS_UTIL_BIGINT_H_
