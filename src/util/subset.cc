#include "util/subset.h"

namespace cqbounds {

std::vector<int> Elements(SubsetMask mask) {
  std::vector<int> out;
  out.reserve(PopCount(mask));
  while (mask) {
    int i = __builtin_ctzll(mask);
    out.push_back(i);
    mask &= mask - 1;
  }
  return out;
}

SubsetMask MaskOf(const std::vector<int>& elements) {
  SubsetMask mask = 0;
  for (int e : elements) mask |= Singleton(e);
  return mask;
}

}  // namespace cqbounds
